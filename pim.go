// Package pim is a library for data scheduling on Processor-In-Memory
// (PIM) arrays, reproducing Tian, Sha, Chantrapornchai and Kogge,
// "Optimizing Data Scheduling on Processor-In-Memory Arrays"
// (IPPS 1998).
//
// A PIM array is a 2-D mesh of processors with private memories. An
// application is described by its data reference strings, split into
// execution windows (Trace). Data scheduling decides where every data
// item lives in every window so that the total communication cost —
// x-y-routing distance weighted by transferred volume, plus the cost of
// moving items between windows — is minimal. The package provides:
//
//   - the three schedulers of the paper: SCDS (one center per item for
//     the whole run), LOMCDS (per-window local-optimal centers) and
//     GOMCDS (globally optimal center sequences via shortest paths
//     through per-item cost graphs), all honoring per-processor memory
//     capacities;
//   - execution-window grouping (the paper's Algorithm 3) with greedy
//     and exact variants;
//   - baseline distributions (row-wise, column-wise, block,
//     block-cyclic) and workload generators that rebuild the paper's
//     reference-string benchmarks (LU factorization, matrix squaring,
//     the irregular CODE kernel and their combinations);
//   - a discrete-event mesh-interconnect simulator that cross-validates
//     the analytic cost model and reports execution time in cycles; and
//   - the experiment harness that regenerates the paper's tables.
//
// Quick start:
//
//	g := pim.SquareGrid(4)
//	tr := pim.LU{}.Generate(16, g)
//	p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))
//	schedule, err := pim.GOMCDS{}.Schedule(p)
//	if err != nil { ... }
//	fmt.Println(p.Model.TotalCost(schedule))
package pim

import (
	"io"

	"repro/internal/capture"
	"repro/internal/coarse"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/online"
	"repro/internal/placement"
	"repro/internal/plan"
	"repro/internal/render"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/segment"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/workload"
)

// Topology.
type (
	// Grid is a rectangular processor array with x-y routing.
	Grid = grid.Grid
	// Coord is a processor position (X column, Y row).
	Coord = grid.Coord
)

// NewGrid returns a width x height processor array.
func NewGrid(width, height int) Grid { return grid.New(width, height) }

// SquareGrid returns an n x n processor array.
func SquareGrid(n int) Grid { return grid.Square(n) }

// Traces and reference strings.
type (
	// Trace is a scheduling problem instance: per-window reference
	// events over a data space.
	Trace = trace.Trace
	// Window is one execution window of a trace.
	Window = trace.Window
	// Ref is a single reference event.
	Ref = trace.Ref
	// DataID identifies a data item.
	DataID = trace.DataID
	// Matrix describes the 2-D logical data array.
	Matrix = trace.Matrix
	// Interval is a half-open range of window indices.
	Interval = trace.Interval
)

// NewTrace returns an empty trace over the array and data space.
func NewTrace(g Grid, numData int) *Trace { return trace.New(g, numData) }

// SquareMatrix returns an n x n data array descriptor.
func SquareMatrix(n int) Matrix { return trace.SquareMatrix(n) }

// ConcatTraces chains traces over the same grid and data space.
func ConcatTraces(traces ...*Trace) *Trace { return trace.Concat(traces...) }

// EncodeTrace writes a trace in the pimtrace text format.
func EncodeTrace(w io.Writer, t *Trace) error { return trace.Encode(w, t) }

// DecodeTrace parses a trace from the pimtrace text format.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// Cost model and schedules.
type (
	// Model evaluates schedules against a trace.
	Model = cost.Model
	// Schedule assigns a center to every item in every window.
	Schedule = cost.Schedule
	// Breakdown splits a schedule's cost into residence and movement.
	Breakdown = cost.Breakdown
)

// NewModel builds a cost model for a trace.
func NewModel(t *Trace) *Model { return cost.NewModel(t) }

// UniformSchedule keeps one assignment for all windows (no movement).
func UniformSchedule(assign []int, numWindows int) Schedule {
	return cost.Uniform(assign, numWindows)
}

// Schedulers.
type (
	// Problem is a prepared scheduling instance (model + residence
	// table + capacity).
	Problem = sched.Problem
	// Scheduler computes data schedules.
	Scheduler = sched.Scheduler
	// SCDS is single-center data scheduling (Algorithm 1).
	SCDS = sched.SCDS
	// LOMCDS is local-optimal multiple-center data scheduling.
	LOMCDS = sched.LOMCDS
	// GOMCDS is global-optimal multiple-center data scheduling
	// (Algorithm 2).
	GOMCDS = sched.GOMCDS
	// Fixed wraps a static assignment as a Scheduler.
	Fixed = sched.Fixed
)

// NewProblem prepares a scheduling instance. capacity is the
// per-processor memory in items; 0 or less means unbounded.
func NewProblem(t *Trace, capacity int) *Problem { return sched.NewProblem(t, capacity) }

// NewProblemFromModel wraps a caller-tuned model (e.g. custom
// DataSize) into a Problem.
func NewProblemFromModel(m *Model, capacity int) *Problem {
	return sched.NewProblemFromModel(m, capacity)
}

// SchedulerByName resolves "scds", "lomcds" or "gomcds".
func SchedulerByName(name string) (Scheduler, error) { return sched.ByName(name) }

// Baseline placements and the capacity model.
type (
	// Assignment maps data items to processors for one window.
	Assignment = placement.Assignment
)

// RowWise is the straightforward row-major distribution (the paper's
// "S.F." baseline).
func RowWise(m Matrix, g Grid) Assignment { return placement.RowWise(m, g) }

// ColumnWise is the column-major distribution.
func ColumnWise(m Matrix, g Grid) Assignment { return placement.ColumnWise(m, g) }

// Block2D is the 2-D block (tile) distribution.
func Block2D(m Matrix, g Grid) Assignment { return placement.Block2D(m, g) }

// BlockCyclic2D is the 2-D block-cyclic distribution.
func BlockCyclic2D(m Matrix, g Grid, blockSize int) Assignment {
	return placement.BlockCyclic2D(m, g, blockSize)
}

// Cyclic deals items round-robin over processors.
func Cyclic(numData int, g Grid) Assignment { return placement.Cyclic(numData, g) }

// MinCapacity is the smallest per-processor memory holding all items.
func MinCapacity(numData, numProcs int) int { return placement.MinCapacity(numData, numProcs) }

// PaperCapacity is the paper's experimental memory size: twice the
// minimum.
func PaperCapacity(numData, numProcs int) int { return placement.PaperCapacity(numData, numProcs) }

// Execution-window grouping (the paper's Algorithm 3).
type (
	// Grouping is a per-item partition of the window sequence.
	Grouping = window.Grouping
	// GroupingMethod selects how group centers are computed.
	GroupingMethod = window.Method
)

// Grouping center methods.
const (
	// LocalCenters places each group at its local-optimal center.
	LocalCenters = window.LocalCenters
	// GlobalCenters chooses group centers by a global shortest path.
	GlobalCenters = window.GlobalCenters
)

// GreedyGrouping runs Algorithm 3 (strict-improvement acceptance).
func GreedyGrouping(p *Problem, m GroupingMethod) Grouping { return window.Greedy(p, m) }

// GreedyGroupingAcceptEqual runs Algorithm 3 with its literal
// accept-on-equal rule.
func GreedyGroupingAcceptEqual(p *Problem, m GroupingMethod) Grouping {
	return window.GreedyAcceptEqual(p, m)
}

// OptimalGrouping computes the exact minimum-cost partition per item.
func OptimalGrouping(p *Problem) Grouping { return window.Optimal(p) }

// GroupSchedule converts a grouping into a per-window schedule.
func GroupSchedule(p *Problem, grp Grouping, m GroupingMethod) (Schedule, error) {
	return window.Schedule(p, grp, m)
}

// Workload generators.
type (
	// Generator produces benchmark traces.
	Generator = workload.Generator
	// LU is right-looking LU factorization (benchmark 1).
	LU = workload.LU
	// MatSquare computes the square of a matrix (benchmark 2).
	MatSquare = workload.MatSquare
	// Code is the irregular CODE kernel stand-in.
	Code = workload.Code
	// Stencil is a five-point stencil sweep.
	Stencil = workload.Stencil
	// AffineNest traces generic affine loop nests.
	AffineNest = workload.AffineNest
	// Access is one affine array access of an AffineNest.
	Access = workload.Access
	// Benchmark is one row family of the paper's tables.
	Benchmark = workload.Benchmark
	// IterationPartition maps iterations to processors.
	IterationPartition = workload.Partition
)

// PaperBenchmarks returns the five benchmarks of the evaluation.
func PaperBenchmarks() []Benchmark { return workload.PaperBenchmarks() }

// GeneratorByName resolves a built-in generator ("lu", "matsquare",
// "code", "stencil", or a combined benchmark name).
func GeneratorByName(name string) (Generator, error) { return workload.ByName(name) }

// Interconnect simulation.
type (
	// SimOptions configures the mesh simulator.
	SimOptions = sim.Options
	// SimResult aggregates one simulation run.
	SimResult = sim.Result
	// Simulator is a reusable mesh simulator.
	Simulator = sim.Simulator
)

// Simulate runs a schedule through the mesh interconnect simulator.
func Simulate(t *Trace, s Schedule, opts SimOptions) (SimResult, error) {
	return sim.Simulate(t, s, opts)
}

// NewSimulator returns a reusable simulator for the array.
func NewSimulator(g Grid, opts SimOptions) *Simulator { return sim.New(g, opts) }

// Experiment harness.
type (
	// ExperimentConfig fixes the experimental setup.
	ExperimentConfig = experiments.Config
	// ExperimentRow is one row of Table 1 or 2.
	ExperimentRow = experiments.Row
)

// DefaultExperimentConfig is the paper's setup (4x4 array; 8, 16, 32;
// memory twice the minimum).
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// Table1 regenerates the paper's Table 1 (costs before grouping).
func Table1(cfg ExperimentConfig) ([]ExperimentRow, error) { return experiments.Table1(cfg) }

// Table2 regenerates the paper's Table 2 (costs after grouping).
func Table2(cfg ExperimentConfig) ([]ExperimentRow, error) { return experiments.Table2(cfg) }

// --- Extensions beyond the paper's core model ---

// Exact capacitated assignment (min-cost-flow) schedulers.
type (
	// ExactSCDS is SCDS with the capacitated assignment solved exactly.
	ExactSCDS = sched.ExactSCDS
	// ExactLOMCDS is LOMCDS with each window's assignment solved
	// exactly.
	ExactLOMCDS = sched.ExactLOMCDS
)

// Online (run-time) scheduling.
type (
	// OnlineScheduler decides placements one window at a time.
	OnlineScheduler = online.Scheduler
	// OnlinePolicy selects the online decision rule.
	OnlinePolicy = online.Policy
)

// Online policies.
const (
	// StayPut keeps the initial placement forever.
	StayPut = online.StayPut
	// Chase moves to every window's local-optimal center.
	Chase = online.Chase
	// Hysteresis moves once staying has cost as much as moving.
	Hysteresis = online.Hysteresis
)

// Replication (multi-copy) scheduling.
type (
	// ReplicaSchedule holds one copy set per item per window.
	ReplicaSchedule = replica.Schedule
	// ReplicaGreedy is the replication-aware greedy scheduler.
	ReplicaGreedy = replica.Greedy
	// ReplicaBreakdown splits a replicated schedule's cost.
	ReplicaBreakdown = replica.Breakdown
)

// EvaluateReplicas returns the cost of a replicated schedule.
func EvaluateReplicas(p *Problem, s ReplicaSchedule) ReplicaBreakdown {
	return replica.Evaluate(p, s)
}

// ReplicasFromSingle lifts a single-copy schedule into the replicated
// representation.
func ReplicasFromSingle(centers [][]int) ReplicaSchedule { return replica.FromSingle(centers) }

// Trace capture.
type (
	// Recorder collects reference events from an instrumented
	// application and produces a Trace.
	Recorder = capture.Recorder
)

// NewRecorder returns a trace recorder for the array and data space.
func NewRecorder(g Grid, numData int) *Recorder { return capture.NewRecorder(g, numData) }

// Statistics and rendering.
type (
	// ScheduleStats summarizes a schedule (locality, movement,
	// occupancy balance).
	ScheduleStats = stats.ScheduleStats
	// TraceStats summarizes a trace (sharing degree, reuse distance).
	TraceStats = stats.TraceStats
)

// ComputeStats derives schedule statistics.
func ComputeStats(p *Problem, s Schedule) ScheduleStats { return stats.Compute(p, s) }

// ComputeTraceStats derives trace statistics.
func ComputeTraceStats(t *Trace) TraceStats { return stats.ComputeTrace(t) }

// Heatmap renders per-processor values as a text heatmap.
func Heatmap(g Grid, values []int64, title string) string { return render.Heatmap(g, values, title) }

// Routing disciplines for the simulator.
const (
	// RouteXY routes x first, then y (the paper's assumption).
	RouteXY = sim.RouteXY
	// RouteYX routes y first, then x.
	RouteYX = sim.RouteYX
	// RouteBalanced alternates XY and YX per message.
	RouteBalanced = sim.RouteBalanced
)

// Window segmentation from flat reference streams.
type (
	// SegmentOptions tunes phase detection.
	SegmentOptions = segment.Options
)

// SegmentFixed splits a flat event stream into fixed-size windows.
func SegmentFixed(g Grid, numData int, refs []Ref, perWindow int) *Trace {
	return segment.FixedSize(g, numData, refs, perWindow)
}

// SegmentPhases splits a flat event stream at working-set shifts.
func SegmentPhases(g Grid, numData int, refs []Ref, opts SegmentOptions) *Trace {
	return segment.PhaseDetect(g, numData, refs, opts)
}

// FlattenTrace discards window boundaries, returning the event stream.
func FlattenTrace(t *Trace) []Ref { return segment.Flatten(t) }

// Multilevel (coarse-grained) scheduling.
type (
	// CoarseMap aggregates data items into blocks.
	CoarseMap = coarse.Map
)

// TileMatrix partitions a data matrix into tile x tile blocks.
func TileMatrix(m Matrix, tile int) CoarseMap { return coarse.TileMatrix(m, tile) }

// CoarsenTrace rewrites a trace over blocks.
func CoarsenTrace(t *Trace, m CoarseMap) (*Trace, error) { return coarse.Coarsen(t, m) }

// ExpandSchedule turns a block-level schedule into an item-level one.
func ExpandSchedule(s Schedule, m CoarseMap) Schedule { return coarse.Expand(s, m) }

// Communication plans (lowered schedules).
type (
	// Plan is the executable communication plan of a schedule.
	Plan = plan.Plan
	// PlanMessage is one point-to-point transfer.
	PlanMessage = plan.Message
	// PlanPhase is one window's traffic.
	PlanPhase = plan.Phase
)

// BuildPlan lowers a schedule into a communication plan.
func BuildPlan(t *Trace, s Schedule) (*Plan, error) { return plan.Build(t, s) }

// EncodePlan writes a plan in the pimplan text format.
func EncodePlan(w io.Writer, p *Plan) error { return plan.Encode(w, p) }

// DecodePlan parses a plan from the pimplan text format.
func DecodePlan(r io.Reader) (*Plan, error) { return plan.Decode(r) }
