package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScheduleGenerated(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "lu", "-n", "8", "-sched", "all"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"row-wise", "SCDS", "LOMCDS", "GOMCDS", "improvement%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestScheduleWithGrouping(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "code", "-n", "8", "-sched", "lomcds", "-group"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LOMCDS+group") {
		t.Errorf("grouped scheduler label missing:\n%s", out.String())
	}
}

func TestStatsAndHeatmap(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "lu", "-n", "8", "-sched", "gomcds", "-stats", "-heatmap", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"locality:", "reference density", "memory occupancy"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestScheduleTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.trace")
	content := "pimtrace v1\ngrid 2 2\ndata 3\nwindow\nref 0 0 2\nref 3 1 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-sched", "scds", "-capacity", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	// 3 items is not a perfect square -> cyclic baseline.
	if !strings.Contains(out.String(), "cyclic") {
		t.Errorf("cyclic baseline missing:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{},                                // no input
		{"-gen", "bogus"},                 // unknown generator
		{"-gen", "lu", "-sched", "bogus"}, // unknown scheduler
		{"-in", "/nonexistent"},           // missing trace
		{"-gen", "lu", "-n", "8", "-heatmap", "99"}, // window out of range
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestPlanExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.plan")
	var out bytes.Buffer
	if err := run([]string{"-gen", "lu", "-n", "8", "-sched", "gomcds", "-plan", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pimplan v1\n") {
		t.Errorf("plan header: %q", string(data[:20]))
	}
	if !strings.Contains(out.String(), "flit-hops") {
		t.Errorf("summary missing:\n%s", out.String())
	}
}
