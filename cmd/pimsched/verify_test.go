package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/grid"
	"repro/internal/trace"
)

// capturedTraceFile records a small two-window SPMD run through the
// capture.Recorder instrumentation front end and writes it out as a
// trace file, exactly as a downstream user would produce pimsched
// input.
func capturedTraceFile(t *testing.T) string {
	t.Helper()
	r := capture.NewRecorder(grid.Square(2), 4)
	r.TouchVolume(0, 0, 2)
	r.Touch(1, 1)
	r.Touch(3, 2)
	r.Touch(2, 3)
	r.Barrier()
	r.Touch(2, 0)
	r.TouchVolume(3, 1, 3)
	r.Touch(1, 3)
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "captured.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVerifyGoldenOutput pins the full pimsched -verify output on the
// captured trace: the referee must attest all four schedules and the
// numbers must stay exactly as recorded.
func TestVerifyGoldenOutput(t *testing.T) {
	path := capturedTraceFile(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-sched", "all", "-capacity", "0", "-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	const golden = `trace: 2x2 array, 4 items, 2 windows, 7 refs; capacity 0/processor

Total communication cost
scheduler  residence  movement  total  improvement%
---------  ---------  --------  -----  ------------
row-wise   7          0         7      0.0
SCDS       4          0         4      42.9
LOMCDS     0          4         4      42.9
GOMCDS     3          1         4      42.9

verify: 4 schedules passed invariant + independent cost checks
`
	if out.String() != golden {
		t.Errorf("output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", out.String(), golden)
	}
}

// TestVerifyCatchesInjectedCorruption pins the failure path: with
// -inject-corrupt the referee must reject the very first schedule with
// a divergence report naming both cost claims.
func TestVerifyCatchesInjectedCorruption(t *testing.T) {
	path := capturedTraceFile(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-sched", "all", "-capacity", "0", "-verify", "-inject-corrupt"}, &out)
	if err == nil {
		t.Fatal("corrupted schedule passed verification")
	}
	const goldenErr = `verify row-wise: verify: cost divergence: model claims residence 7 + movement 0 = 7, independent recomputation gives residence 9 + movement 1 = 10`
	if err.Error() != goldenErr {
		t.Errorf("error diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", err.Error(), goldenErr)
	}
	if strings.Contains(out.String(), "verify:") {
		t.Errorf("success line printed despite corruption:\n%s", out.String())
	}
}

// TestInjectCorruptRequiresVerify guards the flag pairing.
func TestInjectCorruptRequiresVerify(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "lu", "-n", "8", "-inject-corrupt"}, &out); err == nil {
		t.Fatal("-inject-corrupt without -verify accepted")
	}
}
