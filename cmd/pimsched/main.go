// Command pimsched runs a data scheduler over a trace and reports the
// total communication cost against the straightforward baselines.
//
// Schedule a generated workload:
//
//	pimsched -gen lu -n 16 -grid 4x4 -sched gomcds
//
// Schedule a trace file with all schedulers and window grouping:
//
//	pimsched -in app.trace -sched all -group
//
// Re-check every emitted schedule with the independent referee
// (structural invariants plus a from-scratch cost recomputation that
// must agree with the cost model exactly):
//
//	pimsched -gen lu -n 16 -sched all -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/cost"
	"repro/internal/placement"
	"repro/internal/plan"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/window"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimsched", flag.ContinueOnError)
	gen := fs.String("gen", "", "workload generator (see pimtrace -gen)")
	n := fs.Int("n", 16, "data matrix dimension for -gen")
	gridSpec := fs.String("grid", "4x4", "processor array for -gen, WxH")
	in := fs.String("in", "", "trace file (overrides -gen)")
	schedName := fs.String("sched", "all", "scheduler: scds, lomcds, gomcds or all")
	capFactor := fs.Int("capacity", 2, "memory capacity as a multiple of the minimum; 0 = unbounded")
	group := fs.Bool("group", false, "apply execution-window grouping (Algorithm 3)")
	showStats := fs.Bool("stats", false, "print schedule statistics (locality, movement, occupancy)")
	heatmap := fs.Int("heatmap", -1, "render reference-density and occupancy heatmaps for this window")
	planOut := fs.String("plan", "", "write the last scheduler's lowered communication plan to this file")
	doVerify := fs.Bool("verify", false, "re-check every schedule with the independent referee (invariants + from-scratch cost recomputation)")
	injectCorrupt := fs.Bool("inject-corrupt", false, "deliberately corrupt schedules before -verify runs (referee self-test; must fail)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *injectCorrupt && !*doVerify {
		return fmt.Errorf("-inject-corrupt requires -verify")
	}

	t, err := loadTrace(*in, *gen, *n, *gridSpec)
	if err != nil {
		return err
	}

	capacity := 0
	if *capFactor > 0 {
		capacity = *capFactor * placement.MinCapacity(t.NumData, t.Grid.NumProcs())
	}
	p := sched.NewProblem(t, capacity)

	var schedulers []sched.Scheduler
	if *schedName == "all" {
		schedulers = []sched.Scheduler{sched.SCDS{}, sched.LOMCDS{}, sched.GOMCDS{}}
	} else {
		s, err := sched.ByName(*schedName)
		if err != nil {
			return err
		}
		schedulers = []sched.Scheduler{s}
	}

	fmt.Fprintf(out, "trace: %v array, %d items, %d windows, %d refs; capacity %d/processor\n\n",
		t.Grid, t.NumData, t.NumWindows(), t.NumRefs(), capacity)

	var lastSchedule cost.Schedule
	var lastName string

	// referee re-checks a schedule against the claimed breakdown using
	// the table-independent verifier; -inject-corrupt perturbs the
	// schedule first so the divergence path is exercised end to end.
	verified := 0
	referee := func(name string, sc cost.Schedule, bd cost.Breakdown) error {
		if !*doVerify {
			return nil
		}
		if *injectCorrupt {
			sc = corrupted(sc, t.Grid.NumProcs())
		}
		if err := verify.Check(t, sc, capacity); err != nil {
			return fmt.Errorf("verify %s: %v", name, err)
		}
		claim := verify.Breakdown{Residence: bd.Residence, Move: bd.Move}
		if err := verify.CrossCheck(t, sc, p.Model.DataSize, claim); err != nil {
			return fmt.Errorf("verify %s: %v", name, err)
		}
		verified++
		return nil
	}

	tbl := report.NewTable("Total communication cost",
		"scheduler", "residence", "movement", "total", "improvement%")

	// Row-wise baseline (only meaningful for square data spaces; fall
	// back to cyclic otherwise).
	baseAssign, baseName := baseline(t)
	baseSched, err := (sched.Fixed{Label: baseName, Assign: baseAssign}).Schedule(p)
	if err != nil {
		return err
	}
	baseCost := p.Model.TotalCost(baseSched)
	b := p.Model.Evaluate(baseSched)
	if err := referee(baseName, baseSched, b); err != nil {
		return err
	}
	tbl.AddF(baseName, b.Residence, b.Move, b.Total(), 0.0)

	for _, s := range schedulers {
		var schedule cost.Schedule
		name := s.Name()
		if *group {
			switch s.(type) {
			case sched.LOMCDS:
				schedule, err = window.Schedule(p, window.Greedy(p, window.LocalCenters), window.LocalCenters)
				name += "+group"
			case sched.GOMCDS:
				schedule, err = window.Schedule(p, window.Greedy(p, window.LocalCenters), window.GlobalCenters)
				name += "+group"
			default:
				schedule, err = s.Schedule(p)
			}
		} else {
			schedule, err = s.Schedule(p)
		}
		if err != nil {
			return fmt.Errorf("%s: %v", s.Name(), err)
		}
		bd := p.Model.Evaluate(schedule)
		if err := referee(name, schedule, bd); err != nil {
			return err
		}
		tbl.AddF(name, bd.Residence, bd.Move, bd.Total(), report.Improvement(baseCost, bd.Total()))
		lastSchedule, lastName = schedule, name
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if *doVerify {
		fmt.Fprintf(out, "\nverify: %d schedules passed invariant + independent cost checks\n", verified)
	}
	if *showStats {
		st := stats.Compute(p, lastSchedule)
		ts := stats.ComputeTrace(t)
		fmt.Fprintf(out, "\nstatistics for %s:\n", lastName)
		fmt.Fprintf(out, "  locality:        %.1f%% of reference volume served locally\n", 100*st.Locality())
		fmt.Fprintf(out, "  avg ref distance %.2f hops\n", st.AvgRefDistance)
		fmt.Fprintf(out, "  moves:           %d item relocations, total distance %d\n", st.Moves, st.MoveDistance)
		fmt.Fprintf(out, "  occupancy:       max %d items/processor, imbalance CV %.2f\n", st.MaxOccupancy, st.OccupancyCV)
		fmt.Fprintf(out, "  trace:           sharing degree %.2f readers/item, reuse distance %.2f windows\n",
			ts.SharingDegree, ts.ReuseDistance)
	}
	if *planOut != "" {
		pl, err := plan.Build(t, lastSchedule)
		if err != nil {
			return err
		}
		f, err := os.Create(*planOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := plan.Encode(f, pl); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s: %d messages, %d flit-hops\n", *planOut, pl.NumMessages(), pl.FlitHops())
	}
	if *heatmap >= 0 {
		if *heatmap >= t.NumWindows() {
			return fmt.Errorf("window %d out of range (trace has %d)", *heatmap, t.NumWindows())
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, render.Heatmap(t.Grid, render.ReferenceDensity(t, *heatmap),
			fmt.Sprintf("reference density, window %d", *heatmap)))
		fmt.Fprintln(out)
		fmt.Fprint(out, render.NumericMap(t.Grid, render.Occupancy(t.Grid, lastSchedule, *heatmap),
			fmt.Sprintf("memory occupancy under %s, window %d", lastName, *heatmap)))
	}
	return nil
}

func loadTrace(in, gen string, n int, gridSpec string) (*trace.Trace, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Decode(f)
	}
	if gen == "" {
		return nil, fmt.Errorf("either -in or -gen is required")
	}
	g, err := cliutil.ParseGrid(gridSpec)
	if err != nil {
		return nil, err
	}
	generator, err := workload.ByName(gen)
	if err != nil {
		return nil, err
	}
	return generator.Generate(n, g), nil
}

// corrupted returns a copy of the schedule with the first item's
// window-0 center displaced to the next processor — the minimal
// corruption the referee must catch (its claimed cost no longer matches
// the recomputation, or the center leaves a full processor's memory).
func corrupted(sc cost.Schedule, numProcs int) cost.Schedule {
	c := sc.Clone()
	if len(c.Centers) > 0 && len(c.Centers[0]) > 0 && numProcs > 1 {
		c.Centers[0][0] = (c.Centers[0][0] + 1) % numProcs
	}
	return c
}

// baseline picks the straightforward distribution: row-wise when the
// data space is a perfect square (the paper's matrices), cyclic
// otherwise.
func baseline(t *trace.Trace) (placement.Assignment, string) {
	for n := 1; n*n <= t.NumData; n++ {
		if n*n == t.NumData {
			return placement.RowWise(trace.SquareMatrix(n), t.Grid), "row-wise"
		}
	}
	return placement.Cyclic(t.NumData, t.Grid), "cyclic"
}
