package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "lu", "-n", "4", "-grid", "2x2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "pimtrace v1\n") {
		t.Errorf("output header: %q", out.String()[:20])
	}
	if !strings.Contains(out.String(), "grid 2 2") {
		t.Error("grid line missing")
	}
}

func TestGenerateAndInspectFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	var out bytes.Buffer
	if err := run([]string{"-gen", "code", "-n", "4", "-grid", "2x2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"grid:", "2x2", "windows:  4", "data:     16"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{},                                  // neither -gen nor -in
		{"-gen", "bogus"},                   // unknown generator
		{"-gen", "lu", "-grid", "bad"},      // bad grid
		{"-in", "/nonexistent/file.trace"},  // missing file
		{"-gen", "lu", "-o", "/nope/x.out"}, // unwritable output
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
