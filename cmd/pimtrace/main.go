// Command pimtrace generates and inspects PIM reference-string traces.
//
// Generate a trace:
//
//	pimtrace -gen lu -n 16 -grid 4x4 -o lu16.trace
//
// Inspect a trace file:
//
//	pimtrace -in lu16.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pimtrace", flag.ContinueOnError)
	gen := fs.String("gen", "", "workload generator (lu, matsquare, code, stencil, lu+code, matsquare+code, code+rcode)")
	n := fs.Int("n", 16, "data matrix dimension (n x n)")
	gridSpec := fs.String("grid", "4x4", "processor array, WxH")
	out := fs.String("o", "", "output file (default stdout)")
	in := fs.String("in", "", "trace file to inspect instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err := trace.Decode(f)
		if err != nil {
			return err
		}
		return describe(stdout, *in, t)
	}

	if *gen == "" {
		return fmt.Errorf("either -gen or -in is required")
	}
	g, err := cliutil.ParseGrid(*gridSpec)
	if err != nil {
		return err
	}
	generator, err := workload.ByName(*gen)
	if err != nil {
		return err
	}
	t := generator.Generate(*n, g)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Encode(w, t)
}

func describe(w io.Writer, name string, t *trace.Trace) error {
	fmt.Fprintf(w, "trace:    %s\n", name)
	fmt.Fprintf(w, "grid:     %v (%d processors)\n", t.Grid, t.Grid.NumProcs())
	fmt.Fprintf(w, "data:     %d items\n", t.NumData)
	fmt.Fprintf(w, "windows:  %d\n", t.NumWindows())
	fmt.Fprintf(w, "refs:     %d\n", t.NumRefs())
	for i := range t.Windows {
		vol := 0
		touched := map[trace.DataID]bool{}
		for _, r := range t.Windows[i].Refs {
			vol += r.Volume
			touched[r.Data] = true
		}
		fmt.Fprintf(w, "  window %3d: %6d refs, volume %6d, %5d distinct items\n",
			i, len(t.Windows[i].Refs), vol, len(touched))
	}
	return nil
}
