// Command pimsim runs a scheduled benchmark through the mesh
// interconnect simulator and reports execution time in cycles.
//
//	pimsim -bench 1 -n 16                 # all schemes on LU 16x16
//	pimsim -bench 5 -n 32 -bandwidth 4    # wider links
//	pimsim -bench 2 -n 16 -nocontention   # ideal interconnect
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimsim", flag.ContinueOnError)
	bench := fs.Int("bench", 1, "paper benchmark id (1-5)")
	n := fs.Int("n", 16, "data matrix dimension")
	gridSpec := fs.String("grid", "4x4", "processor array, WxH")
	capFactor := fs.Int("capacity", 2, "memory capacity as a multiple of the minimum")
	bandwidth := fs.Int("bandwidth", 1, "link bandwidth in flits per cycle")
	noContention := fs.Bool("nocontention", false, "disable link arbitration")
	routingName := fs.String("routing", "xy", "routing discipline: xy, yx or balanced")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := cliutil.ParseGrid(*gridSpec)
	if err != nil {
		return err
	}
	cfg := experiments.Config{Grid: g, Sizes: []int{*n}, CapacityFactor: *capFactor}
	tr, schedules, err := experiments.Schedules(cfg, *bench, *n)
	if err != nil {
		return err
	}

	routing, err := sim.RoutingByName(*routingName)
	if err != nil {
		return err
	}
	opts := sim.Options{LinkBandwidth: *bandwidth, NoContention: *noContention, Routing: routing}
	simulator := sim.New(g, opts)
	tbl := report.NewTable(
		fmt.Sprintf("Benchmark %d, %dx%d data on %v array (bandwidth %d, contention %v, routing %v)",
			*bench, *n, *n, g, *bandwidth, !*noContention, routing),
		"scheme", "cycles", "flit-hops", "messages", "max-link-flits")
	for _, name := range []string{"S.F.", "SCDS", "LOMCDS", "GOMCDS"} {
		res, err := simulator.Run(tr, schedules[name])
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		tbl.AddF(name, res.Cycles, res.FlitHops, res.Messages, res.MaxLinkFlits)
	}
	return tbl.Render(out)
}
