package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateBenchmark(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "1", "-n", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"S.F.", "SCDS", "LOMCDS", "GOMCDS", "cycles", "flit-hops"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimulateOptions(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "2", "-n", "8", "-bandwidth", "4", "-nocontention", "-routing", "yx"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "routing yx") {
		t.Errorf("routing not reflected in title:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-bench", "99"},
		{"-grid", "bad"},
		{"-routing", "zigzag"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
