// Command pimserve runs the scheduling service over HTTP: a
// long-running pool of workers that schedules traces on demand, with a
// fingerprint-keyed cache of cost models and residence tables shared
// across requests.
//
// Start a server and schedule a trace:
//
//	pimserve -addr :8080 &
//	curl -X POST -d @request.json 'localhost:8080/schedule?verify=true'
//	curl localhost:8080/stats
//
// The request body is JSON: {"trace": "<pimtrace v1 text>",
// "algorithm": "gomcds", "capacity": 2}. See examples/pimserve for a
// runnable walkthrough. The server sheds load with 429 + Retry-After
// once -inflight computations are running, times requests out after
// -timeout, and drains in-flight work on SIGINT/SIGTERM before exiting.
//
// Observability: GET /metrics serves Prometheus text exposition
// (request counters, cache counters, per-stage latency histograms);
// -access-log logs one slog line per request; -debug-addr starts a
// second listener serving net/http/pprof and expvar — bind it to
// loopback, the profiles expose process internals.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	inflight := fs.Int("inflight", 2*runtime.GOMAXPROCS(0), "max concurrent schedule computations; 0 = unbounded")
	cacheSize := fs.Int("cache", service.DefaultCacheSize, "residence-table cache entries (both tiers)")
	cacheBytes := fs.Int64("cache-bytes", 0, "residence-table cache byte budget across the flat hot tier and compressed cold tier; 0 = cache entries x 4 MiB")
	coldTier := fs.Bool("cold-tier", true, "demote over-budget tables into a compressed cold tier instead of evicting them (false = flat one-tier LRU)")
	maxTableCells := fs.Int64("max-table-cells", service.DefaultMaxTableCells, "max residence-table cells accepted per trace or shipped table payload")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline; 0 = none")
	maxBody := fs.Int64("max-body", service.DefaultMaxBodyBytes, "request body limit in bytes")
	maxBatch := fs.Int("max-batch", service.DefaultMaxBatchSpecs, "max specs per /schedule/batch request")
	peerFill := fs.Bool("peer-fill", false, "adopt residence tables from cluster peers when a router supplies a peer hint, instead of rebuilding locally")
	peerFillTimeout := fs.Duration("peer-fill-timeout", service.DefaultPeerFillTimeout, "deadline for one peer table fetch before falling back to a local build")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace period for in-flight requests")
	debugAddr := fs.String("debug-addr", "", "optional pprof/expvar listener (e.g. 127.0.0.1:6060); the handlers expose heap contents and build info, so bind loopback or firewall it")
	accessLog := fs.Bool("access-log", false, "log every request (method, path, status, bytes, duration) via slog")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	opts := serveOptions{accessLog: *accessLog}
	if *debugAddr != "" {
		opts.debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return err
		}
	}
	cfg := service.Config{
		MaxInflight:     *inflight,
		CacheSize:       *cacheSize,
		CacheBytes:      *cacheBytes,
		DisableColdTier: !*coldTier,
		Timeout:         *timeout,
		MaxBodyBytes:    *maxBody,
		MaxBatchSpecs:   *maxBatch,
		MaxTableCells:   *maxTableCells,
		PeerFillTimeout: *peerFillTimeout,
	}
	if *peerFill {
		cfg.PeerFill = cluster.NewPeerFill(nil, *maxTableCells)
	}
	return serve(ctx, ln, cfg, *drain, out, opts)
}

// serveOptions carries the optional observability surfaces: an access
// log on the main listener and a separate pprof/expvar debug listener.
type serveOptions struct {
	accessLog bool
	debugLn   net.Listener // nil = no debug listener
}

// serve runs the service on the listener until ctx is cancelled, then
// shuts the HTTP server down gracefully and drains the service's
// in-flight computations. Split from run so tests can drive it on an
// ephemeral port.
func serve(ctx context.Context, ln net.Listener, cfg service.Config, drain time.Duration, out io.Writer, opts serveOptions) error {
	svc := service.New(cfg)
	handler := http.Handler(svc.Handler())
	if opts.accessLog {
		handler = obs.AccessLog(slog.New(slog.NewTextHandler(out, nil)), handler)
	}
	server := &http.Server{Handler: handler}

	fmt.Fprintf(out, "pimserve: listening on %s (inflight %d, cache %d, cache-bytes %d, cold-tier %v, timeout %v, peer-fill %v)\n",
		ln.Addr(), cfg.MaxInflight, cfg.CacheSize, cfg.CacheBytes, !cfg.DisableColdTier, cfg.Timeout, cfg.PeerFill != nil)

	var debugServer *http.Server
	if opts.debugLn != nil {
		debugServer = &http.Server{Handler: obs.DebugHandler()}
		fmt.Fprintf(out, "pimserve: debug listening on %s (pprof, expvar)\n", opts.debugLn.Addr())
		go func() { debugServer.Serve(opts.debugLn) }()
	}

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	select {
	case err := <-errc:
		if debugServer != nil {
			debugServer.Close()
		}
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "pimserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := server.Shutdown(shutdownCtx)
	if debugServer != nil {
		if dbgErr := debugServer.Shutdown(shutdownCtx); err == nil {
			err = dbgErr
		}
	}
	if closeErr := svc.Close(); err == nil {
		err = closeErr
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	fmt.Fprintln(out, "pimserve: drained")
	return err
}
