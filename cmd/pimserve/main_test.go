package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

// syncBuffer makes the server's log writer safe to read while serve is
// still running in another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServeEndToEndAndGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- serve(ctx, ln, service.Config{MaxInflight: 4, Timeout: 10 * time.Second}, 5*time.Second, out, serveOptions{})
	}()

	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)

	var traceBuf bytes.Buffer
	gen, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(&traceBuf, gen.Generate(8, grid.Square(4))); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.Request{Trace: traceBuf.String(), Algorithm: "gomcds", Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/schedule?verify=true", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", resp.StatusCode, data)
	}
	var sr service.Response
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Verified == nil || len(sr.Centers) == 0 {
		t.Fatalf("incomplete response: %+v", sr)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 1 {
		t.Fatalf("stats.Completed = %d, want 1", st.Completed)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	log := out.String()
	for _, want := range []string{"listening on", "shutting down", "drained"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log %q missing %q", log, want)
		}
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Fatal("run accepted an unlistenable address")
	}
}

func TestRunServesOnEphemeralPort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-inflight", "2", "-timeout", "5s"}, out)
	}()

	// The listen address is only printed once the listener is up; poll
	// the log for it.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no listen address in log: %q", out.String())
		}
		if log := out.String(); strings.Contains(log, "listening on ") {
			rest := log[strings.Index(log, "listening on ")+len("listening on "):]
			base = "http://" + strings.Fields(rest)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitHealthy(t, base)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}

// TestDebugListenerAndAccessLog: -debug-addr brings up a second
// listener serving pprof and expvar, and -access-log emits one slog
// line per request on the main listener.
func TestDebugListenerAndAccessLog(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-access-log",
			"-inflight", "2", "-timeout", "5s",
		}, out)
	}()

	addrFromLog := func(marker string) string {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if log := out.String(); strings.Contains(log, marker) {
				rest := log[strings.Index(log, marker)+len(marker):]
				return "http://" + strings.Fields(rest)[0]
			}
			if time.Now().After(deadline) {
				t.Fatalf("no %q in log: %q", marker, out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	base := addrFromLog("listening on ")
	debug := addrFromLog("debug listening on ")
	waitHealthy(t, base)

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(debug + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(data) == 0 {
			t.Fatalf("GET %s: status %d, %d bytes", path, resp.StatusCode, len(data))
		}
	}

	// The /healthz probes above must have produced access-log lines.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "path=/healthz") {
		if time.Now().After(deadline) {
			t.Fatalf("no access-log line for /healthz in log: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "status=200") {
		t.Fatalf("access-log line lacks status: %q", out.String())
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}
