// Command pimload drives a pimserve shard or a pimrouter fleet with a
// closed loop of scheduling requests and reports latency percentiles.
// Each of -concurrency workers keeps exactly one request in flight
// (closed-loop: offered load adapts to service speed, so the report
// measures the service, not a queue), cycling through -traces distinct
// generated traces so cache behaviour is realistic.
//
//	pimload -url http://localhost:8080 -requests 2000 -concurrency 8 -traces 12
//	pimload -url http://localhost:8080 -requests 500 -batch 50
//
// With -batch N each request is a POST /schedule/batch carrying N
// specs for one trace; otherwise requests are single POST /schedule
// calls. Shed responses (503/429) are retried with backoff and counted
// separately — only non-retryable failures count as errors. Failed
// requests are counted, not fatal mid-run: the report is always
// emitted (percentiles over the successes, explicit zeros when every
// request failed — never NaN), and any failure makes the exit status
// nonzero. The report is one JSON object on stdout, suitable for
// scripts/loadtest.sh and BENCH_CLUSTER.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimload:", err)
		os.Exit(1)
	}
}

// Report is the JSON document pimload prints: counts, throughput, and
// latency percentiles over successful requests.
type Report struct {
	URL         string  `json:"url"`
	Requests    int     `json:"requests"`
	Succeeded   int     `json:"succeeded"`
	Failed      int     `json:"failed"`
	Specs       int     `json:"specs"`
	Batch       int     `json:"batch"`
	Concurrency int     `json:"concurrency"`
	Traces      int     `json:"traces"`
	ShedRetries uint64  `json:"shed_retries"`
	ElapsedS    float64 `json:"elapsed_s"`
	RequestsPS  float64 `json:"requests_per_s"`
	SpecsPS     float64 `json:"specs_per_s"`
	P50US       int64   `json:"p50_us"`
	P90US       int64   `json:"p90_us"`
	P99US       int64   `json:"p99_us"`
	MaxUS       int64   `json:"max_us"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimload", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of a pimserve or pimrouter instance")
	requests := fs.Int("requests", 1000, "total requests to issue")
	concurrency := fs.Int("concurrency", 8, "closed-loop workers, one request in flight each")
	traces := fs.Int("traces", 8, "distinct traces to cycle through (the generator yields 12 distinct shapes before repeating)")
	batch := fs.Int("batch", 0, "specs per /schedule/batch request; <=1 sends single /schedule calls")
	algorithm := fs.String("algorithm", "scds", "scheduling algorithm for every spec")
	capacity := fs.Int("capacity", 0, "per-processor capacity for every spec; 0 = uncapacitated")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client deadline")
	maxShedRetries := fs.Int("max-shed-retries", 50, "attempts per request before a shed response (503/429) counts as a failure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 || *concurrency <= 0 || *traces <= 0 {
		return fmt.Errorf("-requests, -concurrency, and -traces must be positive")
	}
	if *maxShedRetries <= 0 {
		return fmt.Errorf("-max-shed-retries must be positive")
	}

	bodies, err := buildBodies(*traces, *batch, *algorithm, *capacity)
	if err != nil {
		return err
	}

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency},
	}
	path := *url + "/schedule"
	if *batch > 1 {
		path = *url + "/schedule/batch"
	}

	// ok marks which latency slots hold a successful request, so the
	// percentile pass can select successes without a lock in the loop.
	latencies := make([]int64, *requests)
	ok := make([]bool, *requests)
	var next, shed, failed atomic.Uint64
	var errMu sync.Mutex
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= *requests {
					return
				}
				t0 := time.Now()
				if err := post(client, path, bodies[n%len(bodies)], &shed, *maxShedRetries); err != nil {
					// Count and continue: one bad request must not
					// abort the run or poison the report with the
					// zero-latency slots of requests never issued.
					failed.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", n, err)
					}
					errMu.Unlock()
					continue
				}
				latencies[n] = time.Since(t0).Microseconds()
				ok[n] = true
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	succeeded := make([]int64, 0, *requests)
	for i, l := range latencies {
		if ok[i] {
			succeeded = append(succeeded, l)
		}
	}
	sort.Slice(succeeded, func(i, j int) bool { return succeeded[i] < succeeded[j] })
	// Percentiles are over successes only; with none they are explicit
	// zeros — a NaN here breaks every downstream JSON parser.
	pct := func(p float64) int64 {
		if len(succeeded) == 0 {
			return 0
		}
		return succeeded[int(p*float64(len(succeeded)-1))]
	}
	specsPer := 1
	if *batch > 1 {
		specsPer = *batch
	}
	report := Report{
		URL:         *url,
		Requests:    *requests,
		Succeeded:   len(succeeded),
		Failed:      int(failed.Load()),
		Specs:       len(succeeded) * specsPer,
		Batch:       *batch,
		Concurrency: *concurrency,
		Traces:      *traces,
		ShedRetries: shed.Load(),
		ElapsedS:    elapsed.Seconds(),
		RequestsPS:  float64(len(succeeded)) / elapsed.Seconds(),
		SpecsPS:     float64(len(succeeded)*specsPer) / elapsed.Seconds(),
		P50US:       pct(0.50),
		P90US:       pct(0.90),
		P99US:       pct(0.99),
		MaxUS:       pct(1.0),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %v)", n, *requests, firstErr)
	}
	return nil
}

// buildBodies pre-marshals one request body per distinct trace so the
// measurement loop does no generation or encoding work.
func buildBodies(traces, batch int, algorithm string, capacity int) ([][]byte, error) {
	gen, err := workload.ByName("lu")
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, traces)
	for i := range bodies {
		var buf bytes.Buffer
		if err := trace.Encode(&buf, gen.Generate(3+i%6, grid.Square(2+(i/6)%2))); err != nil {
			return nil, err
		}
		if batch > 1 {
			specs := make([]service.BatchSpec, batch)
			for j := range specs {
				specs[j] = service.BatchSpec{Algorithm: algorithm, Capacity: capacity}
			}
			bodies[i], err = json.Marshal(service.BatchRequest{Trace: buf.String(), Requests: specs})
		} else {
			bodies[i], err = json.Marshal(service.Request{Trace: buf.String(), Algorithm: algorithm, Capacity: capacity})
		}
		if err != nil {
			return nil, err
		}
	}
	return bodies, nil
}

// post issues one request, retrying shed-class responses (503 with an
// empty ring mid-churn, 429 under overload) with backoff. Any other
// non-200 is a hard error carrying the response body.
func post(client *http.Client, url string, body []byte, shed *atomic.Uint64, maxShedRetries int) error {
	for attempt := 0; attempt < maxShedRetries; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			shed.Add(1)
			time.Sleep(time.Duration(10+attempt*5) * time.Millisecond)
		default:
			return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
	return fmt.Errorf("still shed after %d attempts", maxShedRetries)
}
