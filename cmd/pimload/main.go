// Command pimload drives a pimserve shard or a pimrouter fleet with a
// closed loop of scheduling requests and reports latency percentiles.
// Each of -concurrency workers keeps exactly one request in flight
// (closed-loop: offered load adapts to service speed, so the report
// measures the service, not a queue), cycling through -traces distinct
// generated traces so cache behaviour is realistic.
//
//	pimload -url http://localhost:8080 -requests 2000 -concurrency 8 -traces 12
//	pimload -url http://localhost:8080 -requests 500 -batch 50
//	pimload -url http://localhost:8080 -requests 2000 -traces 64 -zipf 1.2
//
// With -batch N each request is a POST /schedule/batch carrying N
// specs for one trace; otherwise requests are single POST /schedule
// calls. -zipf s (s > 1) draws each request's trace from a Zipf
// distribution over the trace indices instead of cycling uniformly —
// low indices are hot, the tail is scanned rarely — which is what makes
// cache-pressure runs realistic; -seed fixes the draw. -warmup N issues
// N requests before the measured run and reports them as a separate
// phase. When the target exposes a pimserve-style /stats endpoint the
// report carries per-phase cache hit-rates and tables_built deltas.
//
// Shed responses (503/429) are retried with backoff and counted
// separately — only non-retryable failures count as errors. Failed
// requests are counted, not fatal mid-run: the report is always
// emitted (percentiles over the successes, explicit zeros when every
// request failed — never NaN), and any failure makes the exit status
// nonzero. The report is one JSON object on stdout, suitable for
// scripts/loadtest.sh, BENCH_CLUSTER.json, and BENCH_CACHE.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimload:", err)
		os.Exit(1)
	}
}

// Report is the JSON document pimload prints: counts, throughput, and
// latency percentiles over successful requests of the measured phase.
type Report struct {
	URL         string  `json:"url"`
	Requests    int     `json:"requests"`
	Succeeded   int     `json:"succeeded"`
	Failed      int     `json:"failed"`
	Specs       int     `json:"specs"`
	Batch       int     `json:"batch"`
	Concurrency int     `json:"concurrency"`
	Traces      int     `json:"traces"`
	Zipf        float64 `json:"zipf"`
	Warmup      int     `json:"warmup"`
	ShedRetries uint64  `json:"shed_retries"`
	ElapsedS    float64 `json:"elapsed_s"`
	RequestsPS  float64 `json:"requests_per_s"`
	SpecsPS     float64 `json:"specs_per_s"`
	P50US       int64   `json:"p50_us"`
	P90US       int64   `json:"p90_us"`
	P99US       int64   `json:"p99_us"`
	MaxUS       int64   `json:"max_us"`

	// Phases carries one entry per run phase (warmup, measured) with
	// the service-side cache deltas scraped from /stats; omitted when
	// the target does not expose pimserve-style stats (a router, a
	// plain mock).
	Phases []Phase `json:"phases,omitempty"`
}

// Phase is the service-side view of one run phase: how the cache
// responded to the requests this phase issued.
type Phase struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	TablesBuilt uint64  `json:"tables_built"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimload", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of a pimserve or pimrouter instance")
	requests := fs.Int("requests", 1000, "total requests to issue in the measured phase")
	concurrency := fs.Int("concurrency", 8, "closed-loop workers, one request in flight each")
	traces := fs.Int("traces", 8, fmt.Sprintf("distinct traces to cycle through (the generator yields %d distinct shapes)", shapeCeiling))
	batch := fs.Int("batch", 0, "specs per /schedule/batch request; <=1 sends single /schedule calls")
	algorithm := fs.String("algorithm", "scds", "scheduling algorithm for every spec")
	capacity := fs.Int("capacity", 0, "per-processor capacity for every spec; 0 = uncapacitated")
	zipf := fs.Float64("zipf", 0, "Zipf skew over trace indices (must be > 1; low indices are hot); 0 = uniform cycling")
	seed := fs.Int64("seed", 1, "PRNG seed for -zipf trace draws")
	warmup := fs.Int("warmup", 0, "requests to issue (and report as a separate phase) before the measured run")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client deadline")
	maxShedRetries := fs.Int("max-shed-retries", 50, "attempts per request before a shed response (503/429) counts as a failure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 || *concurrency <= 0 || *traces <= 0 {
		return fmt.Errorf("-requests, -concurrency, and -traces must be positive")
	}
	if *maxShedRetries <= 0 {
		return fmt.Errorf("-max-shed-retries must be positive")
	}
	if *zipf != 0 && *zipf <= 1 {
		return fmt.Errorf("-zipf must be > 1 (math/rand Zipf skew), got %v", *zipf)
	}
	if *warmup < 0 {
		return fmt.Errorf("-warmup must be non-negative")
	}

	bodies, err := buildBodies(*traces, *batch, *algorithm, *capacity)
	if err != nil {
		return err
	}

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency},
	}
	path := *url + "/schedule"
	if *batch > 1 {
		path = *url + "/schedule/batch"
	}

	run := phaseRunner{
		client: client, path: path, bodies: bodies,
		concurrency: *concurrency, maxShedRetries: *maxShedRetries,
		zipf: *zipf, seed: *seed,
	}

	// Stats scrapes bracket each phase so the report can attribute
	// cache behaviour per phase; a target without pimserve-style stats
	// (router, mock) just omits the phase section.
	var phases []Phase
	before, scraped := scrapeStats(client, *url)
	if *warmup > 0 {
		res := run.issue(*warmup, 0)
		if res.failed > 0 {
			return fmt.Errorf("%d of %d warmup requests failed (first: %v)", res.failed, *warmup, res.firstErr)
		}
		if after, ok := scrapeStats(client, *url); scraped && ok {
			phases = append(phases, phaseDelta("warmup", *warmup, before, after))
			before = after
		}
	}

	start := time.Now()
	res := run.issue(*requests, *seed+int64(*warmup)) // decorrelate the measured draw from warmup
	elapsed := time.Since(start)
	if after, ok := scrapeStats(client, *url); scraped && ok {
		phases = append(phases, phaseDelta("measured", *requests, before, after))
	}

	succeeded := make([]int64, 0, *requests)
	for i, l := range res.latencies {
		if res.ok[i] {
			succeeded = append(succeeded, l)
		}
	}
	sort.Slice(succeeded, func(i, j int) bool { return succeeded[i] < succeeded[j] })
	// Percentiles are over successes only; with none they are explicit
	// zeros — a NaN here breaks every downstream JSON parser.
	pct := func(p float64) int64 {
		if len(succeeded) == 0 {
			return 0
		}
		return succeeded[int(p*float64(len(succeeded)-1))]
	}
	specsPer := 1
	if *batch > 1 {
		specsPer = *batch
	}
	report := Report{
		URL:         *url,
		Requests:    *requests,
		Succeeded:   len(succeeded),
		Failed:      res.failed,
		Specs:       len(succeeded) * specsPer,
		Batch:       *batch,
		Concurrency: *concurrency,
		Traces:      *traces,
		Zipf:        *zipf,
		Warmup:      *warmup,
		ShedRetries: res.shed,
		ElapsedS:    elapsed.Seconds(),
		RequestsPS:  float64(len(succeeded)) / elapsed.Seconds(),
		SpecsPS:     float64(len(succeeded)*specsPer) / elapsed.Seconds(),
		P50US:       pct(0.50),
		P90US:       pct(0.90),
		P99US:       pct(0.99),
		MaxUS:       pct(1.0),
		Phases:      phases,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if res.failed > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %v)", res.failed, *requests, res.firstErr)
	}
	return nil
}

// phaseRunner issues one closed-loop phase of requests over the
// pre-marshaled bodies.
type phaseRunner struct {
	client         *http.Client
	path           string
	bodies         [][]byte
	concurrency    int
	maxShedRetries int
	zipf           float64
	seed           int64
}

// phaseResult is one phase's outcome; the ok mask marks which latency
// slots hold a successful request, so the percentile pass can select
// successes without a lock in the loop.
type phaseResult struct {
	latencies []int64
	ok        []bool
	shed      uint64
	failed    int
	firstErr  error
}

// issue runs count requests across the configured workers. With Zipf
// skew the trace index of every request slot is drawn up front from one
// seeded sampler, so the draw is deterministic however the scheduler
// interleaves workers (math/rand Zipf is also not goroutine-safe);
// otherwise the request index cycles the bodies uniformly, exactly the
// old behaviour.
func (p phaseRunner) issue(count int, seedOffset int64) phaseResult {
	res := phaseResult{
		latencies: make([]int64, count),
		ok:        make([]bool, count),
	}
	var draw []int
	if p.zipf > 0 {
		src := rand.New(rand.NewSource(p.seed + seedOffset))
		sampler := rand.NewZipf(src, p.zipf, 1, uint64(len(p.bodies)-1))
		draw = make([]int, count)
		for i := range draw {
			draw[i] = int(sampler.Uint64())
		}
	}
	var next, shed, failed atomic.Uint64
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < p.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= count {
					return
				}
				idx := n % len(p.bodies)
				if draw != nil {
					idx = draw[n]
				}
				t0 := time.Now()
				if err := post(p.client, p.path, p.bodies[idx], &shed, p.maxShedRetries); err != nil {
					// Count and continue: one bad request must not
					// abort the run or poison the report with the
					// zero-latency slots of requests never issued.
					failed.Add(1)
					errMu.Lock()
					if res.firstErr == nil {
						res.firstErr = fmt.Errorf("request %d: %w", n, err)
					}
					errMu.Unlock()
					continue
				}
				res.latencies[n] = time.Since(t0).Microseconds()
				res.ok[n] = true
			}
		}()
	}
	wg.Wait()
	res.shed = shed.Load()
	res.failed = int(failed.Load())
	return res
}

// scrapeStats fetches the target's /stats counters. A target without
// the pimserve stats shape (no cache_hits key) reports ok=false and the
// phase section is omitted rather than fabricated.
func scrapeStats(client *http.Client, base string) (map[string]float64, bool) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&raw); err != nil {
		return nil, false
	}
	stats := make(map[string]float64, len(raw))
	for k, v := range raw {
		var f float64
		if json.Unmarshal(v, &f) == nil {
			stats[k] = f
		}
	}
	if _, ok := stats["cache_hits"]; !ok {
		return nil, false
	}
	return stats, true
}

// phaseDelta attributes the counter movement between two scrapes to one
// phase.
func phaseDelta(name string, requests int, before, after map[string]float64) Phase {
	d := func(key string) uint64 {
		delta := after[key] - before[key]
		if delta < 0 {
			return 0 // the service restarted mid-run; don't report garbage
		}
		return uint64(delta)
	}
	ph := Phase{
		Name:        name,
		Requests:    requests,
		CacheHits:   d("cache_hits"),
		CacheMisses: d("cache_misses"),
		TablesBuilt: d("tables_built"),
	}
	if total := ph.CacheHits + ph.CacheMisses; total > 0 {
		ph.HitRate = float64(ph.CacheHits) / float64(total)
	}
	return ph
}

// shapeCeiling is the number of distinct (kernel, size, grid)
// combinations the deterministic generator below yields before shapes
// would repeat: 4 kernels x 8 sizes x 3 grids.
const shapeCeiling = 96

// shapeTrace is the deterministic trace synthesizer: index i always
// maps to the same shape regardless of -traces, so a 3-trace run's
// shapes are a strict prefix-subset of a 64-trace run's (cache
// populations compose across runs, which the fleet tests rely on). The
// kernel kind varies fastest so even tiny -traces values mix kernels.
func shapeTrace(i int) (*trace.Trace, error) {
	kinds := []string{"lu", "matsquare", "stencil", "code"}
	gen, err := workload.ByName(kinds[i%len(kinds)])
	if err != nil {
		return nil, err
	}
	n := 3 + (i/4)%8     // problem size 3..10
	side := 2 + (i/32)%3 // grid 2x2, 3x3, 4x4
	return gen.Generate(n, grid.Square(side)), nil
}

// buildBodies pre-marshals one request body per distinct trace so the
// measurement loop does no generation or encoding work.
func buildBodies(traces, batch int, algorithm string, capacity int) ([][]byte, error) {
	if traces > shapeCeiling {
		return nil, fmt.Errorf("-traces %d exceeds the %d distinct shapes the generator yields", traces, shapeCeiling)
	}
	bodies := make([][]byte, traces)
	for i := range bodies {
		tr, err := shapeTrace(i)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, tr); err != nil {
			return nil, err
		}
		if batch > 1 {
			specs := make([]service.BatchSpec, batch)
			for j := range specs {
				specs[j] = service.BatchSpec{Algorithm: algorithm, Capacity: capacity}
			}
			bodies[i], err = json.Marshal(service.BatchRequest{Trace: buf.String(), Requests: specs})
		} else {
			bodies[i], err = json.Marshal(service.Request{Trace: buf.String(), Algorithm: algorithm, Capacity: capacity})
		}
		if err != nil {
			return nil, err
		}
	}
	return bodies, nil
}

// post issues one request, retrying shed-class responses (503 with an
// empty ring mid-churn, 429 under overload) with backoff. Any other
// non-200 is a hard error carrying the response body.
func post(client *http.Client, url string, body []byte, shed *atomic.Uint64, maxShedRetries int) error {
	for attempt := 0; attempt < maxShedRetries; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			shed.Add(1)
			time.Sleep(time.Duration(10+attempt*5) * time.Millisecond)
		default:
			return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
	return fmt.Errorf("still shed after %d attempts", maxShedRetries)
}
