package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

func TestRunSinglesAndBatchesAgainstRealService(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{
		"-url", ts.URL, "-requests", "40", "-concurrency", "4", "-traces", "5",
	}, &out); err != nil {
		t.Fatalf("singles run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 40 || rep.Specs != 40 || rep.P50US <= 0 || rep.P99US < rep.P50US {
		t.Fatalf("implausible report: %+v", rep)
	}

	out.Reset()
	if err := run([]string{
		"-url", ts.URL, "-requests", "10", "-concurrency", "2", "-traces", "3", "-batch", "20",
	}, &out); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Specs != 200 || rep.Batch != 20 {
		t.Fatalf("batch report: %+v", rep)
	}

	// The generator is deterministic, so the batch run's 3 trace shapes
	// are a subset of the singles run's 5: the service must have built
	// exactly 5 tables across both runs, everything else cache hits.
	if st := svc.Stats(); st.TablesBuilt != 5 {
		t.Fatalf("tables_built = %d, want 5 distinct traces", st.TablesBuilt)
	}
}

// TestRunAllRequestsFailStillReports is the div-by-zero regression: a
// backend that sheds every request forever must yield a full report
// with explicit zero percentiles (never NaN or a panic) plus a nonzero
// exit, with every failure counted.
func TestRunAllRequestsFailStillReports(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "no capacity", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-requests", "6", "-concurrency", "3", "-traces", "2",
		"-max-shed-retries", "2",
	}, &out)
	if err == nil {
		t.Fatal("run reported success when every request failed")
	}
	var rep Report
	if jsonErr := json.Unmarshal(out.Bytes(), &rep); jsonErr != nil {
		t.Fatalf("no parseable report on total failure: %v\n%s", jsonErr, out.String())
	}
	if rep.Requests != 6 || rep.Succeeded != 0 || rep.Failed != 6 {
		t.Fatalf("counts wrong on total failure: %+v", rep)
	}
	if rep.P50US != 0 || rep.P90US != 0 || rep.P99US != 0 || rep.MaxUS != 0 {
		t.Fatalf("percentiles must be explicit zeros with no successes: %+v", rep)
	}
	if rep.RequestsPS != 0 || rep.SpecsPS != 0 || rep.Specs != 0 {
		t.Fatalf("throughput must be zero with no successes: %+v", rep)
	}
	if rep.ShedRetries == 0 {
		t.Fatalf("shed responses were not counted: %+v", rep)
	}
	if !strings.Contains(err.Error(), "6 of 6 requests failed") {
		t.Fatalf("error does not carry the failure count: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run([]string{"-requests", "0"}, io.Discard); err == nil {
		t.Fatal("run accepted zero requests")
	}
	if err := run([]string{"-url", "http://127.0.0.1:1", "-requests", "1", "-concurrency", "1", "-timeout", "1s"}, io.Discard); err == nil {
		t.Fatal("run reported success against a dead server")
	}
}
