package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/service"
)

func TestRunSinglesAndBatchesAgainstRealService(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{
		"-url", ts.URL, "-requests", "40", "-concurrency", "4", "-traces", "5",
	}, &out); err != nil {
		t.Fatalf("singles run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 40 || rep.Specs != 40 || rep.P50US <= 0 || rep.P99US < rep.P50US {
		t.Fatalf("implausible report: %+v", rep)
	}

	out.Reset()
	if err := run([]string{
		"-url", ts.URL, "-requests", "10", "-concurrency", "2", "-traces", "3", "-batch", "20",
	}, &out); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Specs != 200 || rep.Batch != 20 {
		t.Fatalf("batch report: %+v", rep)
	}

	// The generator is deterministic, so the batch run's 3 trace shapes
	// are a subset of the singles run's 5: the service must have built
	// exactly 5 tables across both runs, everything else cache hits.
	if st := svc.Stats(); st.TablesBuilt != 5 {
		t.Fatalf("tables_built = %d, want 5 distinct traces", st.TablesBuilt)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run([]string{"-requests", "0"}, io.Discard); err == nil {
		t.Fatal("run accepted zero requests")
	}
	if err := run([]string{"-url", "http://127.0.0.1:1", "-requests", "1", "-concurrency", "1", "-timeout", "1s"}, io.Discard); err == nil {
		t.Fatal("run reported success against a dead server")
	}
}
