package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

func TestRunSinglesAndBatchesAgainstRealService(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{
		"-url", ts.URL, "-requests", "40", "-concurrency", "4", "-traces", "5",
	}, &out); err != nil {
		t.Fatalf("singles run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 40 || rep.Specs != 40 || rep.P50US <= 0 || rep.P99US < rep.P50US {
		t.Fatalf("implausible report: %+v", rep)
	}

	out.Reset()
	if err := run([]string{
		"-url", ts.URL, "-requests", "10", "-concurrency", "2", "-traces", "3", "-batch", "20",
	}, &out); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Specs != 200 || rep.Batch != 20 {
		t.Fatalf("batch report: %+v", rep)
	}

	// The generator is deterministic, so the batch run's 3 trace shapes
	// are a subset of the singles run's 5: the service must have built
	// exactly 5 tables across both runs, everything else cache hits.
	if st := svc.Stats(); st.TablesBuilt != 5 {
		t.Fatalf("tables_built = %d, want 5 distinct traces", st.TablesBuilt)
	}
}

// TestRunAllRequestsFailStillReports is the div-by-zero regression: a
// backend that sheds every request forever must yield a full report
// with explicit zero percentiles (never NaN or a panic) plus a nonzero
// exit, with every failure counted.
func TestRunAllRequestsFailStillReports(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "no capacity", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-requests", "6", "-concurrency", "3", "-traces", "2",
		"-max-shed-retries", "2",
	}, &out)
	if err == nil {
		t.Fatal("run reported success when every request failed")
	}
	var rep Report
	if jsonErr := json.Unmarshal(out.Bytes(), &rep); jsonErr != nil {
		t.Fatalf("no parseable report on total failure: %v\n%s", jsonErr, out.String())
	}
	if rep.Requests != 6 || rep.Succeeded != 0 || rep.Failed != 6 {
		t.Fatalf("counts wrong on total failure: %+v", rep)
	}
	if rep.P50US != 0 || rep.P90US != 0 || rep.P99US != 0 || rep.MaxUS != 0 {
		t.Fatalf("percentiles must be explicit zeros with no successes: %+v", rep)
	}
	if rep.RequestsPS != 0 || rep.SpecsPS != 0 || rep.Specs != 0 {
		t.Fatalf("throughput must be zero with no successes: %+v", rep)
	}
	if rep.ShedRetries == 0 {
		t.Fatalf("shed responses were not counted: %+v", rep)
	}
	if !strings.Contains(err.Error(), "6 of 6 requests failed") {
		t.Fatalf("error does not carry the failure count: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run([]string{"-requests", "0"}, io.Discard); err == nil {
		t.Fatal("run accepted zero requests")
	}
	if err := run([]string{"-url", "http://127.0.0.1:1", "-requests", "1", "-concurrency", "1", "-timeout", "1s"}, io.Discard); err == nil {
		t.Fatal("run reported success against a dead server")
	}
	// Zipf skew at or below 1 is outside math/rand's domain and must be
	// refused up front, not panic inside a worker.
	if err := run([]string{"-zipf", "1"}, io.Discard); err == nil || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("run accepted -zipf 1: %v", err)
	}
	if err := run([]string{"-zipf", "0.8"}, io.Discard); err == nil {
		t.Fatal("run accepted -zipf 0.8")
	}
	if err := run([]string{"-warmup", "-1"}, io.Discard); err == nil {
		t.Fatal("run accepted a negative warmup")
	}
	// The generator yields exactly shapeCeiling distinct shapes; asking
	// for more would silently duplicate traces and skew cache numbers.
	if err := run([]string{"-traces", "97"}, io.Discard); err == nil || !strings.Contains(err.Error(), "96") {
		t.Fatalf("run accepted -traces over the shape ceiling: %v", err)
	}
}

// The shape generator must yield shapeCeiling genuinely distinct traces:
// any fingerprint collision would make -traces N quietly exercise fewer
// than N tables.
func TestShapeTracesAllDistinct(t *testing.T) {
	seen := make(map[string]int, shapeCeiling)
	for i := 0; i < shapeCeiling; i++ {
		tr, err := shapeTrace(i)
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		fp := tr.Fingerprint().String()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("shapes %d and %d collide on fingerprint %s", prev, i, fp)
		}
		seen[fp] = i
	}
}

// A Zipf run with warmup against a real service must report both phases
// with service-side cache deltas that add up, and the skew must
// concentrate traffic: the warmed cache makes the measured phase mostly
// hits even though -traces far exceeds the request count's coverage of
// a uniform cycle.
func TestRunZipfWarmupReportsPhases(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{
		"-url", ts.URL, "-requests", "120", "-concurrency", "4",
		"-traces", "64", "-zipf", "1.4", "-warmup", "60", "-seed", "7",
	}, &out); err != nil {
		t.Fatalf("zipf run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Zipf != 1.4 || rep.Warmup != 60 || rep.Traces != 64 {
		t.Fatalf("report does not echo the zipf/warmup config: %+v", rep)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "warmup" || rep.Phases[1].Name != "measured" {
		t.Fatalf("want [warmup measured] phases, got %+v", rep.Phases)
	}
	for _, ph := range rep.Phases {
		if ph.CacheHits+ph.CacheMisses != uint64(ph.Requests) {
			t.Fatalf("phase %q: hits %d + misses %d != %d requests",
				ph.Name, ph.CacheHits, ph.CacheMisses, ph.Requests)
		}
		if ph.HitRate < 0 || ph.HitRate > 1 {
			t.Fatalf("phase %q: hit rate %v out of range", ph.Name, ph.HitRate)
		}
	}
	warm, meas := rep.Phases[0], rep.Phases[1]
	if warm.TablesBuilt == 0 {
		t.Fatalf("warmup built no tables: %+v", warm)
	}
	if meas.HitRate <= warm.HitRate {
		t.Fatalf("measured hit rate %.3f not above warmup's %.3f — the warmup did not warm",
			meas.HitRate, warm.HitRate)
	}
	// Skew concentrates: 180 Zipf(1.4) draws over 64 traces touch far
	// fewer distinct shapes than a uniform cycle's min(180, 64).
	if total := warm.TablesBuilt + meas.TablesBuilt; total >= 48 {
		t.Fatalf("zipf draw built %d of 64 tables — looks uniform, not skewed", total)
	}
	// Same seed, same draw: the table population must not grow.
	built := svc.Stats().TablesBuilt
	out.Reset()
	if err := run([]string{
		"-url", ts.URL, "-requests", "120", "-concurrency", "4",
		"-traces", "64", "-zipf", "1.4", "-warmup", "60", "-seed", "7",
	}, &out); err != nil {
		t.Fatalf("repeat zipf run: %v", err)
	}
	if again := svc.Stats().TablesBuilt; again != built {
		t.Fatalf("repeated seeded run built %d new tables (%d -> %d); the draw is not deterministic",
			again-built, built, again)
	}
}

// Against a target without pimserve-style stats the phase section must
// be omitted, not fabricated from garbage.
func TestRunOmitsPhasesWithoutStats(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stats") {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-requests", "4", "-concurrency", "2", "-warmup", "2"}, &out); err != nil {
		t.Fatalf("run against statless target: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Phases != nil {
		t.Fatalf("phases fabricated without a stats endpoint: %+v", rep.Phases)
	}
	if !strings.Contains(out.String(), `"requests": 4`) || strings.Contains(out.String(), `"phases"`) {
		t.Fatalf("phases key must be omitted from the JSON: %s", out.String())
	}
}
