package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

// syncBuffer makes the server's log writer safe to read while serve is
// still running in another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestParseBackends(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  bool
	}{
		{"localhost:8081", []string{"http://localhost:8081"}, false},
		{"localhost:8081, localhost:8082", []string{"http://localhost:8081", "http://localhost:8082"}, false},
		{"http://a:1,https://b:2", []string{"http://a:1", "https://b:2"}, false},
		{"", nil, true},
		{" , ", nil, true},
		{"ftp://a:1", nil, true},
	}
	for _, c := range cases {
		got, err := parseBackends(c.in)
		if (err != nil) != c.err {
			t.Fatalf("parseBackends(%q): err = %v, want err %v", c.in, err, c.err)
		}
		if err == nil && !reflect.DeepEqual(got, c.want) {
			t.Fatalf("parseBackends(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), nil, io.Discard); err == nil {
		t.Fatal("run accepted a missing -backends")
	}
	if err := run(context.Background(), []string{
		"-backends", "localhost:1", "-addr", "256.0.0.1:bad",
	}, io.Discard); err == nil {
		t.Fatal("run accepted an unlistenable address")
	}
}

// TestServeRoutesToBackends boots two real service backends and drives
// a schedule request and the router's observability surfaces through
// serve, then shuts down gracefully.
func TestServeRoutesToBackends(t *testing.T) {
	var backends []string
	for i := 0; i < 2; i++ {
		svc := service.New(service.Config{})
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { ts.Close(); svc.Close() })
		backends = append(backends, ts.URL)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- serve(ctx, ln, cluster.RouterConfig{
			Backends:       backends,
			PeerFill:       true,
			HealthInterval: -1,
		}, 5*time.Second, out)
	}()

	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)

	var traceBuf bytes.Buffer
	gen, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(&traceBuf, gen.Generate(6, grid.Square(2))); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.Request{Trace: traceBuf.String(), Algorithm: "scds"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", resp.StatusCode, data)
	}
	var sr service.Response
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Centers) == 0 {
		t.Fatalf("incomplete response: %+v", sr)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "pim_router_requests_total 1") {
		t.Fatalf("metrics missing router request counter:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	log := out.String()
	for _, want := range []string{"listening on", "shutting down", "drained"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log %q missing %q", log, want)
		}
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
