// Command pimrouter fronts a fleet of pimserve shards with a
// consistent-hash router: requests carrying a trace are pinned to one
// shard by trace fingerprint (so each residence table is built and
// cached exactly once fleet-wide), and session requests stick to the
// shard that created the session.
//
// Start three shards and a router:
//
//	pimserve -addr :8081 -peer-fill &
//	pimserve -addr :8082 -peer-fill &
//	pimserve -addr :8083 -peer-fill &
//	pimrouter -addr :8080 -backends localhost:8081,localhost:8082,localhost:8083
//	curl -X POST -d @request.json localhost:8080/schedule
//
// The router health-checks every backend on -health-interval, ejecting
// unresponsive shards from the ring (their keys drain to ring
// neighbours) and readmitting them when they recover. A request that
// hits a dying shard is retried once against the key's new owner;
// with an empty ring the router sheds with 503 + Retry-After. An
// ejected backend must pass -readmit-after consecutive probes before
// it rejoins, so a flapping shard does not remap its keys every
// interval. With -peer-fill (default on) the router tells each shard
// which peer owned its keys before a ring change, so a shard
// inheriting keys can adopt the already-built tables instead of
// rebuilding them; it also enables replication: each key's table is
// pushed to its next -replication-1 ring owners after the primary
// serves it, so a shard death fails schedules over to a replica that
// already holds the table (no rebuild), and identical in-flight
// single /schedule requests are coalesced into one upstream call.
//
// POST /admin/drain?backend=URL takes a shard out administratively:
// its pinned sessions are exported, imported on their new owners
// (bit-identical resume), and only then does the shard leave the
// ring; POST /admin/undrain?backend=URL lets the health loop readmit
// it.
//
// GET /metrics serves Prometheus text exposition of the router's own
// counters (pim_router_*); GET /stats returns them as JSON along with
// ring membership.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimrouter:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimrouter", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	backends := fs.String("backends", "", "comma-separated pimserve base URLs (required; host:port implies http://)")
	replicas := fs.Int("replicas", cluster.DefaultReplicas, "virtual nodes per backend on the hash ring")
	replication := fs.Int("replication", cluster.DefaultReplication, "ring owners per fingerprint key (primary + pushed replicas); 1 disables replication")
	peerFill := fs.Bool("peer-fill", true, "attach peer-owner hints so shards can adopt tables from the previous key owner")
	healthInterval := fs.Duration("health-interval", cluster.DefaultHealthInterval, "backend health probe period; <0 disables probing")
	healthTimeout := fs.Duration("health-timeout", cluster.DefaultHealthTimeout, "deadline for one health probe")
	readmitAfter := fs.Int("readmit-after", cluster.DefaultReadmitAfter, "consecutive passing probes before an ejected backend is readmitted")
	maxBody := fs.Int64("max-body", cluster.DefaultRouterMaxBody, "request body limit in bytes")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace period for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls, err := parseBackends(*backends)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, cluster.RouterConfig{
		Backends:       urls,
		Replicas:       *replicas,
		Replication:    *replication,
		ReadmitAfter:   *readmitAfter,
		PeerFill:       *peerFill,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		MaxBodyBytes:   *maxBody,
	}, *drain, out)
}

// parseBackends splits the -backends list, defaulting bare host:port
// entries to http://.
func parseBackends(list string) ([]string, error) {
	var urls []string
	for _, b := range strings.Split(list, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return nil, fmt.Errorf("backend %q: only http and https are supported", b)
		}
		urls = append(urls, b)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("-backends is required: comma-separated pimserve URLs")
	}
	return urls, nil
}

// serve runs the router on the listener until ctx is cancelled, then
// shuts down gracefully. Split from run so tests can drive it on an
// ephemeral port.
func serve(ctx context.Context, ln net.Listener, cfg cluster.RouterConfig, drain time.Duration, out io.Writer) error {
	router := cluster.NewRouter(cfg)
	server := &http.Server{Handler: router.Handler()}

	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = cluster.DefaultReplicas
	}
	replication := cfg.Replication
	if replication <= 0 {
		replication = cluster.DefaultReplication
	}
	fmt.Fprintf(out, "pimrouter: listening on %s, %d backends (replicas %d, replication %d, peer-fill %v, health every %v)\n",
		ln.Addr(), router.Ring().Len(), replicas, replication, cfg.PeerFill, cfg.HealthInterval)

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	select {
	case err := <-errc:
		router.Close()
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "pimrouter: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := server.Shutdown(shutdownCtx)
	router.Close()
	<-errc // Serve has returned http.ErrServerClosed by now
	fmt.Fprintln(out, "pimrouter: drained")
	return err
}
