// Command pimbench regenerates the paper's evaluation artifacts.
//
//	pimbench -table 1                 # Table 1: costs before grouping
//	pimbench -table 2                 # Table 2: costs after grouping
//	pimbench -table example           # the Section 3.3 worked example
//	pimbench -table ablation          # grouping-strategy ablation (E6)
//	pimbench -table sweep -n 16       # window-granularity sweep
//	pimbench -table sim -n 16         # simulated execution time (E5)
//	pimbench -table all               # everything above
//	pimbench -table 1 -verify         # referee every schedule independently
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cost"
	"repro/internal/costgraph"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimbench", flag.ContinueOnError)
	table := fs.String("table", "all", "artifact: 1, 2, example, ablation, sweep, sim, online, replica, exact, scaling, coarse, kernel, dpkernel or all")
	gridSpec := fs.String("grid", "4x4", "processor array, WxH")
	sizesSpec := fs.String("sizes", "8,16,32", "data matrix dimensions")
	capFactor := fs.Int("capacity", 2, "memory capacity as a multiple of the minimum")
	n := fs.Int("n", 16, "data size for the sweep and sim artifacts")
	doVerify := fs.Bool("verify", false, "run every schedule through the independent referee (invariants + from-scratch cost recomputation)")
	doStages := fs.Bool("stages", false, "print a per-stage time breakdown (table builds, scheduler runs) after the artifacts")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := cliutil.ParseGrid(*gridSpec)
	if err != nil {
		return err
	}
	sizes, err := cliutil.ParseSizes(*sizesSpec)
	if err != nil {
		return err
	}
	cfg := experiments.Config{Grid: g, Sizes: sizes, CapacityFactor: *capFactor, Verify: *doVerify}
	var breakdown *obs.StageBreakdown
	if *doStages {
		breakdown = obs.NewStageBreakdown()
		cfg.Stages = breakdown.Record
	}

	want := func(name string) bool { return *table == name || *table == "all" }
	ran := false
	// The referee hooks live in Table1/Table2/SimStudy; the extension
	// studies ignore Config.Verify, so the attestation must not cover
	// them.
	refereed := false
	var unrefereed []string
	noReferee := func(name string) {
		if *doVerify {
			unrefereed = append(unrefereed, name)
		}
	}

	if want("example") {
		ran = true
		noReferee("example")
		res, err := experiments.Example331()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatExample(g, res))
		fmt.Fprintln(out)
	}
	if want("1") {
		ran = true
		refereed = true
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		if err := experiments.RenderRows("Table 1: total communication cost before grouping", rows).Render(out); err != nil {
			return err
		}
		printAverages(out, rows)
	}
	if want("2") {
		ran = true
		refereed = true
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		if err := experiments.RenderRows("Table 2: total communication cost after grouping", rows).Render(out); err != nil {
			return err
		}
		printAverages(out, rows)
	}
	if want("ablation") {
		ran = true
		noReferee("ablation")
		rows, err := experiments.GroupingAblation(cfg)
		if err != nil {
			return err
		}
		tbl := report.NewTable("Grouping ablation (LOMCDS centers)",
			"B.", "Size", "ungrouped", "greedy", "greedy<=", "optimalDP", "greedyGroups", "optGroups")
		for _, r := range rows {
			tbl.AddF(r.BenchmarkID, fmt.Sprintf("%dx%d", r.Size, r.Size),
				r.Ungrouped, r.Greedy, r.GreedyEq, r.Optimal, r.GreedyGroups, r.OptimalGroups)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("sweep") {
		ran = true
		noReferee("sweep")
		rows, err := experiments.WindowSweep(cfg, *n, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		tbl := report.NewTable(fmt.Sprintf("Window-granularity sweep (size %dx%d)", *n, *n),
			"B.", "merge", "windows", "LOMCDS", "GOMCDS")
		for _, r := range rows {
			tbl.AddF(r.BenchmarkID, r.MergeFactor, r.Windows, r.LOMCDS, r.GOMCDS)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("sim") {
		ran = true
		refereed = true
		rows, err := experiments.SimStudy(cfg, *n, sim.Options{})
		if err != nil {
			return err
		}
		if err := experiments.RenderSimRows(
			fmt.Sprintf("Simulated execution (size %dx%d, contended mesh)", *n, *n), rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("online") {
		ran = true
		noReferee("online")
		rows, err := experiments.OnlineStudy(cfg, *n)
		if err != nil {
			return err
		}
		if err := experiments.RenderOnlineRows(
			fmt.Sprintf("Online policies vs offline optimum (size %dx%d)", *n, *n), rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("replica") {
		ran = true
		noReferee("replica")
		rows, err := experiments.ReplicationStudy(cfg, *n, []int{1, 2, 4})
		if err != nil {
			return err
		}
		if err := experiments.RenderReplicaRows(
			fmt.Sprintf("Replication-factor sweep (size %dx%d)", *n, *n), rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("exact") {
		ran = true
		noReferee("exact")
		rows, err := experiments.ExactAssignmentStudy(cfg, *n, []int{1, 2, 4})
		if err != nil {
			return err
		}
		if err := experiments.RenderExactRows(
			fmt.Sprintf("Greedy vs exact capacitated assignment (size %dx%d)", *n, *n), rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("scaling") {
		ran = true
		noReferee("scaling")
		grids := []grid.Grid{grid.Square(2), grid.Square(4), grid.New(8, 4), grid.Square(8)}
		rows, err := experiments.ScalingStudy(*n, grids, *capFactor)
		if err != nil {
			return err
		}
		if err := experiments.RenderScalingRows(
			fmt.Sprintf("Array scaling (size %dx%d data)", *n, *n), rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("coarse") {
		ran = true
		noReferee("coarse")
		rows, err := experiments.CoarseningStudy(cfg, *n, []int{1, 2, 4})
		if err != nil {
			return err
		}
		if err := experiments.RenderCoarseRows(
			fmt.Sprintf("Multilevel coarsening (size %dx%d)", *n, *n), rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("kernel") {
		ran = true
		noReferee("kernel")
		if err := kernelStudy(out, g, *n, cfg.Stages); err != nil {
			return err
		}
	}
	if want("dpkernel") {
		ran = true
		noReferee("dpkernel")
		if err := dpKernelStudy(out, g, *n, *capFactor, cfg.Stages); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown artifact %q (want 1, 2, example, ablation, sweep, sim, online, replica, exact, scaling, coarse, kernel, dpkernel or all)", *table)
	}
	if *doVerify {
		if len(unrefereed) > 0 {
			fmt.Fprintf(out, "verify: no referee hooks for %s; -verify covers tables 1, 2 and sim\n",
				strings.Join(unrefereed, ", "))
		}
		if refereed {
			fmt.Fprintln(out, "verify: all schedules passed invariant + independent cost checks")
		}
	}
	if breakdown != nil {
		fmt.Fprintln(out, "stage breakdown:")
		if _, err := breakdown.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// kernelStudy times the separable prefix-sum residence kernel against
// the naive per-cell kernel on a dense random instance (n x n data
// items on the chosen array, 8 windows of 64 references per processor)
// and cross-checks that the two tables agree cell for cell, so the
// printed speedup is attested to be a speedup of the *same* function.
func kernelStudy(out io.Writer, g grid.Grid, n int, stages func(string, time.Duration)) error {
	rng := rand.New(rand.NewSource(1998))
	nd, np := n*n, g.NumProcs()
	tr := trace.New(g, trimData(nd))
	for w := 0; w < 8; w++ {
		win := tr.AddWindow()
		if tr.NumData == 0 {
			continue
		}
		for r := 0; r < 64*np; r++ {
			win.Add(rng.Intn(np), trace.DataID(rng.Intn(tr.NumData)))
		}
	}
	m := cost.NewModel(tr)
	m.Stages = stages

	start := time.Now()
	fast := m.BuildResidenceTable()
	fastDur := time.Since(start)
	start = time.Now()
	naive := m.BuildResidenceTableNaive()
	naiveDur := time.Since(start)

	for w := 0; w < fast.NumWindows(); w++ {
		for d := 0; d < fast.NumData(); d++ {
			fr, nr := fast.Row(w, d), naive.Row(w, d)
			for c := range fr {
				if fr[c] != nr[c] {
					return fmt.Errorf("kernel divergence at [%d][%d][%d]: separable %d, naive %d",
						w, d, c, fr[c], nr[c])
				}
			}
		}
	}

	tbl := report.NewTable(fmt.Sprintf("Residence kernels (%v array, %d items, %d windows, %d refs)",
		g, tr.NumData, tr.NumWindows(), tr.NumRefs()),
		"kernel", "time")
	tbl.AddF(cost.KernelSeparable, fastDur.Round(time.Microsecond))
	tbl.AddF(cost.KernelNaive, naiveDur.Round(time.Microsecond))
	if err := tbl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "kernels agree on all cells")
	if fastDur > 0 {
		fmt.Fprintf(out, "speedup: %.1fx\n", float64(naiveDur)/float64(fastDur))
	}
	fmt.Fprintln(out)
	return nil
}

// dpKernelStudy times GOMCDS end to end with the separable min-plus
// sweep DP kernel against the dense O(P²) relaxation on a dense random
// capacitated instance, and cross-checks that the two schedules are
// identical placement for placement (same centers, hence same cost),
// so the printed speedup is attested to be a speedup of the *same*
// scheduler. The companion artifact to `-table kernel` (PR 2's
// residence-kernel comparison).
func dpKernelStudy(out io.Writer, g grid.Grid, n, capFactor int, stages func(string, time.Duration)) error {
	rng := rand.New(rand.NewSource(1998))
	nd, np := trimData(n*n), g.NumProcs()
	tr := trace.New(g, nd)
	for w := 0; w < 8; w++ {
		win := tr.AddWindow()
		if nd == 0 {
			continue
		}
		for r := 0; r < 8*np; r++ {
			win.Add(rng.Intn(np), trace.DataID(rng.Intn(nd)))
		}
	}
	capacity := 0
	if nd > 0 && capFactor > 0 {
		capacity = capFactor * placement.MinCapacity(nd, np)
	}
	m := cost.NewModel(tr)
	m.Stages = stages
	p := sched.NewProblemFromModel(m, capacity)

	start := time.Now()
	sweep, err := sched.GOMCDS{Kernel: costgraph.KernelSweep}.Schedule(p)
	if err != nil {
		return err
	}
	sweepDur := time.Since(start)
	start = time.Now()
	naive, err := sched.GOMCDS{Kernel: costgraph.KernelNaive}.Schedule(p)
	if err != nil {
		return err
	}
	naiveDur := time.Since(start)

	if !sweep.Equal(naive) {
		return fmt.Errorf("dpkernel divergence: sweep and naive GOMCDS schedules differ")
	}

	tbl := report.NewTable(fmt.Sprintf("GOMCDS DP kernels (%v array, %d items, %d windows, capacity %d)",
		g, nd, tr.NumWindows(), capacity),
		"kernel", "time", "total cost")
	tbl.AddF(costgraph.KernelSweep, sweepDur.Round(time.Microsecond), m.TotalCost(sweep))
	tbl.AddF(costgraph.KernelNaive, naiveDur.Round(time.Microsecond), m.TotalCost(naive))
	if err := tbl.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "kernels agree on every placement")
	if sweepDur > 0 {
		fmt.Fprintf(out, "speedup: %.1fx\n", float64(naiveDur)/float64(sweepDur))
	}
	fmt.Fprintln(out)
	return nil
}

// trimData keeps tiny CLI invocations legal: a data count of zero
// (n = 0) still builds a model, it just prices nothing.
func trimData(nd int) int {
	if nd < 0 {
		return 0
	}
	return nd
}

func printAverages(out io.Writer, rows []experiments.Row) {
	fmt.Fprintf(out, "average improvement: SCDS %.1f%%  LOMCDS %.1f%%  GOMCDS %.1f%%\n\n",
		experiments.AverageImprovement(rows, "SCDS"),
		experiments.AverageImprovement(rows, "LOMCDS"),
		experiments.AverageImprovement(rows, "GOMCDS"))
}
