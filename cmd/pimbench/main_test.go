package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExampleArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "example"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SCDS", "LOMCDS", "GOMCDS", "(1,0)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("example output missing %q", want)
		}
	}
}

func TestTable1SmallSize(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1", "-sizes", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "average improvement") {
		t.Errorf("table 1 output:\n%s", s)
	}
	if !strings.Contains(s, "8x8") {
		t.Error("size column missing")
	}
}

func TestTable2SmallSize(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "2", "-sizes", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "after grouping") {
		t.Errorf("table 2 output:\n%s", out.String())
	}
}

func TestStudies(t *testing.T) {
	for _, table := range []string{"ablation", "sweep", "sim", "online", "replica", "exact", "scaling", "coarse", "kernel"} {
		var out bytes.Buffer
		if err := run([]string{"-table", table, "-sizes", "8", "-n", "8"}, &out); err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", table)
		}
	}
}

// TestKernelArtifact: the kernel comparison must attest cell-for-cell
// agreement between the separable and naive residence kernels before
// it reports any timing, so the speedup is a speedup of equal output.
func TestKernelArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "kernel", "-n", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Residence kernels", "separable", "naive", "kernels agree on all cells", "speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("kernel output missing %q:\n%s", want, s)
		}
	}
}

// TestDPKernelArtifact: the DP-kernel comparison must attest that the
// sweep and dense GOMCDS runs produced identical schedules before it
// reports any timing, so the speedup is a speedup of equal output.
func TestDPKernelArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "dpkernel", "-n", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"GOMCDS DP kernels", "sweep", "naive", "kernels agree on every placement", "speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("dpkernel output missing %q:\n%s", want, s)
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-table", "bogus"},
		{"-grid", "bad"},
		{"-sizes", "x"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestVerifyFlag runs Table 1 with the independent referee enabled:
// every schedule is invariant-checked and its model cost re-derived
// from scratch, and the run attests success at the end.
func TestVerifyFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1", "-sizes", "8", "-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 1") {
		t.Errorf("table missing:\n%s", s)
	}
	if !strings.Contains(s, "verify: all schedules passed invariant + independent cost checks") {
		t.Errorf("verification attestation missing:\n%s", s)
	}
	if strings.Contains(s, "no referee hooks") {
		t.Errorf("table 1 is fully refereed, unexpected caveat:\n%s", s)
	}
}

// TestVerifyFlagUnrefereedArtifact: the extension studies carry no
// referee hooks, so -verify must disclose that instead of printing a
// blanket attestation it cannot back.
func TestVerifyFlagUnrefereedArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "scaling", "-n", "8", "-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "verify: no referee hooks for scaling") {
		t.Errorf("unrefereed caveat missing:\n%s", s)
	}
	if strings.Contains(s, "all schedules passed") {
		t.Errorf("attestation printed for unrefereed artifact:\n%s", s)
	}
}

// TestStagesFlag: -stages appends a per-stage time breakdown covering
// the cost-model table builds and the scheduler runs; without the flag
// no breakdown is printed.
func TestStagesFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1", "-sizes", "8", "-stages"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"stage breakdown:", "cost.residence_table", "sched.scds", "sched.lomcds", "sched.gomcds"} {
		if !strings.Contains(s, want) {
			t.Errorf("-stages output missing %q:\n%s", want, s)
		}
	}

	out.Reset()
	if err := run([]string{"-table", "1", "-sizes", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "stage breakdown:") {
		t.Error("breakdown printed without -stages")
	}
}

// TestStagesFlagKernelArtifact: the kernel study's two builds record
// through the same sink, so the breakdown distinguishes the separable
// and naive kernels.
func TestStagesFlagKernelArtifact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "kernel", "-n", "4", "-stages"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"cost.residence_table", "cost.residence_table_naive"} {
		if !strings.Contains(s, want) {
			t.Errorf("kernel -stages output missing %q:\n%s", want, s)
		}
	}
}
