#!/usr/bin/env bash
# Kernel benchmark snapshots and drift guards.
#
# Snapshot mode (default): runs the four headline comparisons —
# BenchmarkResidenceKernel (separable prefix-sum residence kernel vs
# naive per-cell kernel, 16x16 array), BenchmarkShortestLayeredPath
# + BenchmarkGOMCDS (separable min-plus sweep DP vs dense O(P²)
# relaxation, 16x16 array), BenchmarkDeltaApply (incremental session
# rescheduling one edited window vs a from-scratch rebuild, 16x16
# array, 64 windows), and the service hot path (BenchmarkServeSchedule
# closed-loop p50/p99 latency and allocs/op, plus the zero-alloc
# kernels BenchmarkResidenceRow and BenchmarkSolveBatch/batch, which
# FAIL the snapshot if they ever allocate) — prints the raw
# benchstat-compatible output, and records the metrics in
# BENCH_RESIDENCE.json, BENCH_SCHED.json, BENCH_DELTA.json and
# BENCH_SERVE.json. It then measures the two-tier table cache into
# BENCH_CACHE.json: pimtab-v2 codec throughput and compression ratio
# (hard gate: >= 2x on the paper-shaped lu/16 table), the cold-hit
# promotion latency, and a two-process Zipf rebuild comparison at a
# tight byte budget (hard gate: the cold tier rebuilds >= 3x fewer
# tables than the flat LRU under the identical seeded load). Compare
# two runs with:
#
#	scripts/bench.sh > old.txt   # on the baseline commit
#	scripts/bench.sh > new.txt
#	benchstat old.txt new.txt
#
# Check mode: `scripts/bench.sh --check [count]` runs fresh benchmarks
# and FAILS (exit 1) if either fast kernel's ns/op regressed more than
# BENCH_DRIFT_FACTOR x against its committed snapshot; it never
# rewrites the snapshots. It also delegates to scripts/loadtest.sh
# --check, which guards the cluster-path p99s in BENCH_CLUSTER.json
# (refresh that snapshot with scripts/loadtest.sh). BENCH_DRIFT_FACTOR defaults to 2.0 — generous
# because CI machines differ from the machine that recorded the
# snapshot; it is a tripwire for algorithmic regressions (e.g. a naive
# kernel sneaking back in as default), not a precise perf gate.
# Override per run: BENCH_DRIFT_FACTOR=1.5 scripts/bench.sh --check
#
# Usage: scripts/bench.sh [--check] [count]   (default -count 5; --check defaults to 3)
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "--check" ]; then
	CHECK=1
	shift
fi

if [ "$CHECK" = 1 ]; then
	COUNT="${1:-3}"
else
	COUNT="${1:-5}"
fi

FACTOR="${BENCH_DRIFT_FACTOR:-2.0}"

# check_drift SNAPSHOT_FILE KEY FRESH_SUMMARY [UNIT] — compare one
# numeric metric between a fresh summary and the committed snapshot.
check_drift() {
	local file="$1" key="$2" summary="$3" unit="${4:-ns/op}"
	if [ ! -f "$file" ]; then
		echo "bench.sh --check: no $file snapshot to compare against" >&2
		exit 1
	fi
	local fresh base
	fresh="$(echo "$summary" | awk -F'[ ,]+' -v k="\"$key\":" '$2 == k { print $3 }')"
	base="$(awk -F'[ ,]+' -v k="\"$key\":" '$2 == k { print $3 }' "$file")"
	if [ -z "$fresh" ] || [ -z "$base" ]; then
		echo "bench.sh --check: could not parse $key (fresh='$fresh' base='$base')" >&2
		exit 1
	fi
	echo
	echo "bench.sh --check: $key fresh ${fresh} ${unit} vs snapshot ${base} ${unit} (allowed ${FACTOR}x)"
	awk -v fresh="$fresh" -v base="$base" -v factor="$FACTOR" -v key="$key" -v unit="$unit" 'BEGIN {
		if (fresh > base * factor) {
			printf "bench.sh --check: REGRESSION in %s: %.0f %s > %.2f x %.0f %s\n", key, fresh, unit, factor, base, unit > "/dev/stderr"
			exit 1
		}
		printf "bench.sh --check: ok (%.2fx of snapshot)\n", fresh / base
	}'
}

echo "== residence kernel =="
RAW="$(go test -run '^$' -bench '^BenchmarkResidenceKernel$' -benchmem -count "$COUNT" .)"
echo "$RAW"

RES_SUMMARY="$(echo "$RAW" | awk -v count="$COUNT" '
/^BenchmarkResidenceKernel\/separable/ { sep += $3; nsep++ }
/^BenchmarkResidenceKernel\/naive/     { nai += $3; nnai++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nsep == 0 || nnai == 0) {
		print "bench.sh: no residence benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	sep /= nsep; nai /= nnai
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkResidenceKernel\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"separable_ns_per_op\": %.0f,\n", sep
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f\n", nai / sep
	printf "}\n"
}')"

echo
echo "== layered DP kernel (GOMCDS) =="
RAW_DP="$(go test -run '^$' -bench '^(BenchmarkShortestLayeredPath|BenchmarkGOMCDS)$' -benchmem -count "$COUNT" .)"
echo "$RAW_DP"

SCHED_SUMMARY="$(echo "$RAW_DP" | awk -v count="$COUNT" '
/^BenchmarkShortestLayeredPath\/sweep\/16x16/ { swp += $3; nswp++ }
/^BenchmarkShortestLayeredPath\/naive\/16x16/ { nai += $3; nnai++ }
/^BenchmarkGOMCDS\/sweep/                     { gsw += $3; ngsw++ }
/^BenchmarkGOMCDS\/naive/                     { gna += $3; ngna++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nswp == 0 || nnai == 0 || ngsw == 0 || ngna == 0) {
		print "bench.sh: no layered-DP benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	swp /= nswp; nai /= nnai; gsw /= ngsw; gna /= ngna
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkShortestLayeredPath\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"sweep_ns_per_op\": %.0f,\n", swp
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f,\n", nai / swp
	printf "  \"gomcds_sweep_ns_per_op\": %.0f,\n", gsw
	printf "  \"gomcds_naive_ns_per_op\": %.0f,\n", gna
	printf "  \"gomcds_speedup\": %.2f\n", gna / gsw
	printf "}\n"
}')"

echo
echo "== incremental rescheduling (delta) =="
RAW_DELTA="$(go test -run '^$' -bench '^BenchmarkDeltaApply$' -benchmem -count "$COUNT" .)"
echo "$RAW_DELTA"

DELTA_SUMMARY="$(echo "$RAW_DELTA" | awk -v count="$COUNT" '
/^BenchmarkDeltaApply\/incremental/ { inc += $3; ninc++ }
/^BenchmarkDeltaApply\/full/        { ful += $3; nful++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (ninc == 0 || nful == 0) {
		print "bench.sh: no delta benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	inc /= ninc; ful /= nful
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkDeltaApply\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"windows\": 64,\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"incremental_ns_per_op\": %.0f,\n", inc
	printf "  \"full_ns_per_op\": %.0f,\n", ful
	printf "  \"speedup\": %.2f\n", ful / inc
	printf "}\n"
}')"

echo
echo "== service hot path =="
RAW_SERVE="$(go test -run '^$' -bench '^(BenchmarkServeSchedule|BenchmarkResidenceRow|BenchmarkSolveBatch)$' -benchmem -count "$COUNT" .)"
echo "$RAW_SERVE"

# Custom metrics (p50-us/p99-us) and allocs/op sit at varying field
# positions, so the awk scans each line for the unit token and takes
# the value before it. The two zero-alloc kernels are hard gates: a
# single allocation per op fails the run, snapshot mode included.
SERVE_SUMMARY="$(echo "$RAW_SERVE" | awk -v count="$COUNT" '
function metric(unit,   i) {
	for (i = 2; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return 0
}
/^BenchmarkServeSchedule\/hot/ {
	hot += $3; hp50 += metric("p50-us"); hp99 += metric("p99-us")
	hal += metric("allocs/op"); nhot++
}
/^BenchmarkServeSchedule\/parallel/ {
	par += $3; pal += metric("allocs/op"); npar++
}
/^BenchmarkResidenceRow/    { rr += $3; rra += metric("allocs/op"); nrr++ }
/^BenchmarkSolveBatch\/batch/ { sb += $3; sba += metric("allocs/op"); nsb++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nhot == 0 || npar == 0 || nrr == 0 || nsb == 0) {
		print "bench.sh: no service benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	if (rra > 0 || sba > 0) {
		printf "bench.sh: zero-alloc kernel regressed: ResidenceRow %.0f allocs, SolveBatch/batch %.0f allocs (want 0)\n", \
			rra / nrr, sba / nsb > "/dev/stderr"
		exit 1
	}
	hot /= nhot; hp50 /= nhot; hp99 /= nhot; hal /= nhot
	par /= npar; pal /= npar; rr /= nrr; sb /= nsb
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkServeSchedule\",\n"
	printf "  \"instance\": \"lu/16 on 4x4, gomcds, cache-hot\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"hot_ns_per_op\": %.0f,\n", hot
	printf "  \"hot_p50_us\": %.0f,\n", hp50
	printf "  \"hot_p99_us\": %.0f,\n", hp99
	printf "  \"hot_allocs_per_op\": %.0f,\n", hal
	printf "  \"parallel_ns_per_op\": %.0f,\n", par
	printf "  \"parallel_allocs_per_op\": %.0f,\n", pal
	printf "  \"residence_row_ns_per_op\": %.0f,\n", rr
	printf "  \"residence_row_allocs_per_op\": 0,\n"
	printf "  \"solve_batch_ns_per_op\": %.0f,\n", sb
	printf "  \"solve_batch_allocs_per_op\": 0\n"
	printf "}\n"
}')"

echo
echo "== two-tier table cache =="
RAW_CODEC="$(go test -run '^$' -bench '^BenchmarkTableCodecV2$' -benchmem -count "$COUNT" ./internal/cost)"
echo "$RAW_CODEC"
RAW_COLD="$(go test -run '^$' -bench '^BenchmarkScheduleColdHit$' -benchmem -count "$COUNT" ./internal/service)"
echo "$RAW_COLD"

# Rebuild comparison: two real pimserve processes at the same tight byte
# budget — one with the cold tier, one flat (-cold-tier=false) — driven
# with the identical seeded Zipf load, so the only variable is what the
# cache does under pressure. The budget (170 KB against a ~1 MB flat
# working set of 64 tables) is where the flat entry-LRU demonstrably
# thrashes; the cold tier holds the whole set compressed.
CACHE_BUDGET="${BENCH_CACHE_BUDGET:-170000}"
CACHE_REQUESTS="${BENCH_CACHE_REQUESTS:-2000}"
CACHE_TRACES="${BENCH_CACHE_TRACES:-64}"
CACHE_ZIPF="${BENCH_CACHE_ZIPF:-1.05}"
CACHE_DIR="$(mktemp -d)"
go build -o "$CACHE_DIR/pimserve" ./cmd/pimserve
go build -o "$CACHE_DIR/pimload" ./cmd/pimload
CACHE_PIDS=()
cache_cleanup() {
	for pid in "${CACHE_PIDS[@]:-}"; do kill -TERM "$pid" 2>/dev/null || true; done
	for pid in "${CACHE_PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
	rm -rf "$CACHE_DIR"
}
trap cache_cleanup EXIT
cache_addr() { # LOGFILE
	local addr=""
	for _ in $(seq 100); do
		addr="$(sed -n 's/^pimserve: listening on \([^ ,]*\).*/\1/p' "$1")"
		[ -n "$addr" ] && curl -sf "http://$addr/healthz" >/dev/null 2>&1 && { echo "$addr"; return 0; }
		sleep 0.1
	done
	echo "bench.sh: pimserve never came up" >&2; cat "$1" >&2; return 1
}
"$CACHE_DIR/pimserve" -addr 127.0.0.1:0 -cache 128 -cache-bytes "$CACHE_BUDGET" \
	>"$CACHE_DIR/tiered.log" 2>&1 &
CACHE_PIDS+=($!)
"$CACHE_DIR/pimserve" -addr 127.0.0.1:0 -cache 128 -cache-bytes "$CACHE_BUDGET" -cold-tier=false \
	>"$CACHE_DIR/flat.log" 2>&1 &
CACHE_PIDS+=($!)
TIERED_ADDR="$(cache_addr "$CACHE_DIR/tiered.log")"
FLAT_ADDR="$(cache_addr "$CACHE_DIR/flat.log")"
echo "zipf load: $CACHE_REQUESTS requests, $CACHE_TRACES traces, s=$CACHE_ZIPF, budget ${CACHE_BUDGET}B"
"$CACHE_DIR/pimload" -url "http://$TIERED_ADDR" -requests "$CACHE_REQUESTS" -concurrency 8 \
	-traces "$CACHE_TRACES" -zipf "$CACHE_ZIPF" -seed 42 >/dev/null
"$CACHE_DIR/pimload" -url "http://$FLAT_ADDR" -requests "$CACHE_REQUESTS" -concurrency 8 \
	-traces "$CACHE_TRACES" -zipf "$CACHE_ZIPF" -seed 42 >/dev/null
stat_of() { # ADDR KEY
	curl -sf "http://$1/stats" | tr -d '\n' | sed -n "s/.*\"$2\": *\([0-9]*\).*/\1/p"
}
TIERED_BUILT="$(stat_of "$TIERED_ADDR" tables_built)"
TIERED_HITS="$(stat_of "$TIERED_ADDR" cache_hits)"
TIERED_PROMOTIONS="$(stat_of "$TIERED_ADDR" cache_promotions)"
FLAT_BUILT="$(stat_of "$FLAT_ADDR" tables_built)"
FLAT_HITS="$(stat_of "$FLAT_ADDR" cache_hits)"
cache_cleanup
trap - EXIT
echo "two-tier built $TIERED_BUILT tables ($TIERED_PROMOTIONS promotions); flat built $FLAT_BUILT"

CACHE_SUMMARY="$({ echo "$RAW_CODEC"; echo "$RAW_COLD"; } | awk -v count="$COUNT" \
	-v budget="$CACHE_BUDGET" -v reqs="$CACHE_REQUESTS" -v traces="$CACHE_TRACES" -v zipf="$CACHE_ZIPF" \
	-v tbuilt="$TIERED_BUILT" -v thits="$TIERED_HITS" -v tpromo="$TIERED_PROMOTIONS" \
	-v fbuilt="$FLAT_BUILT" -v fhits="$FLAT_HITS" '
function metric(unit,   i) {
	for (i = 2; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return 0
}
/^BenchmarkTableCodecV2\/encode/ { enc += $3; ratio += metric("ratio"); nenc++ }
/^BenchmarkTableCodecV2\/decode/ { dec += $3; ndec++ }
/^BenchmarkScheduleColdHit/      { cold += $3; cala += metric("allocs/op"); ncold++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nenc == 0 || ndec == 0 || ncold == 0) {
		print "bench.sh: no cache benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	enc /= nenc; ratio /= nenc; dec /= ndec; cold /= ncold; cala /= ncold
	# Hard gates, snapshot mode included: the compressed cold tier only
	# earns its complexity if pimtab-v2 at least halves the paper-shaped
	# table and the tight-budget Zipf run rebuilds at least 3x less than
	# the flat LRU.
	if (ratio < 2) {
		printf "bench.sh: pimtab-v2 compression ratio %.2f below the 2x gate\n", ratio > "/dev/stderr"
		exit 1
	}
	if (fbuilt < 3 * tbuilt) {
		printf "bench.sh: two-tier rebuilds %d vs flat %d: below the 3x rebuild gate\n", tbuilt, fbuilt > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"two-tier-table-cache\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"codec_table\": \"lu/16 on 4x4\",\n"
	printf "  \"codec_encode_ns_per_op\": %.0f,\n", enc
	printf "  \"codec_decode_ns_per_op\": %.0f,\n", dec
	printf "  \"codec_compression_ratio\": %.2f,\n", ratio
	printf "  \"cold_hit_ns_per_op\": %.0f,\n", cold
	printf "  \"cold_hit_allocs_per_op\": %.0f,\n", cala
	printf "  \"zipf_budget_bytes\": %d,\n", budget
	printf "  \"zipf_requests\": %d,\n", reqs
	printf "  \"zipf_traces\": %d,\n", traces
	printf "  \"zipf_s\": %s,\n", zipf
	printf "  \"tiered_tables_built\": %d,\n", tbuilt
	printf "  \"tiered_cache_hits\": %d,\n", thits
	printf "  \"tiered_promotions\": %d,\n", tpromo
	printf "  \"flat_tables_built\": %d,\n", fbuilt
	printf "  \"flat_cache_hits\": %d,\n", fhits
	printf "  \"rebuild_improvement\": %.2f\n", fbuilt / tbuilt
	printf "}\n"
}')"

if [ "$CHECK" = 1 ]; then
	check_drift BENCH_RESIDENCE.json separable_ns_per_op "$RES_SUMMARY"
	check_drift BENCH_SCHED.json sweep_ns_per_op "$SCHED_SUMMARY"
	check_drift BENCH_SCHED.json gomcds_sweep_ns_per_op "$SCHED_SUMMARY"
	check_drift BENCH_DELTA.json incremental_ns_per_op "$DELTA_SUMMARY"
	check_drift BENCH_SERVE.json hot_ns_per_op "$SERVE_SUMMARY"
	check_drift BENCH_SERVE.json hot_p99_us "$SERVE_SUMMARY" us
	check_drift BENCH_SERVE.json hot_allocs_per_op "$SERVE_SUMMARY" allocs/op
	check_drift BENCH_CACHE.json codec_encode_ns_per_op "$CACHE_SUMMARY"
	check_drift BENCH_CACHE.json cold_hit_ns_per_op "$CACHE_SUMMARY"
	check_drift BENCH_CACHE.json tiered_tables_built "$CACHE_SUMMARY" tables
	echo
	echo "== cluster loadtest drift (scripts/loadtest.sh --check) =="
	scripts/loadtest.sh --check
else
	echo "$RES_SUMMARY" > BENCH_RESIDENCE.json
	echo "$SCHED_SUMMARY" > BENCH_SCHED.json
	echo "$DELTA_SUMMARY" > BENCH_DELTA.json
	echo "$SERVE_SUMMARY" > BENCH_SERVE.json
	echo "$CACHE_SUMMARY" > BENCH_CACHE.json
	echo
	echo "bench.sh: wrote BENCH_RESIDENCE.json, BENCH_SCHED.json, BENCH_DELTA.json, BENCH_SERVE.json and BENCH_CACHE.json"
	cat BENCH_RESIDENCE.json BENCH_SCHED.json BENCH_DELTA.json BENCH_SERVE.json BENCH_CACHE.json
fi
