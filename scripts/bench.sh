#!/usr/bin/env bash
# Kernel benchmark snapshots and drift guards.
#
# Snapshot mode (default): runs the three headline comparisons —
# BenchmarkResidenceKernel (separable prefix-sum residence kernel vs
# naive per-cell kernel, 16x16 array), BenchmarkShortestLayeredPath
# + BenchmarkGOMCDS (separable min-plus sweep DP vs dense O(P²)
# relaxation, 16x16 array), and BenchmarkDeltaApply (incremental
# session rescheduling one edited window vs a from-scratch rebuild,
# 16x16 array, 64 windows) — prints the raw benchstat-compatible
# output, and records ns/op plus the speedups in BENCH_RESIDENCE.json,
# BENCH_SCHED.json and BENCH_DELTA.json. Compare two runs with:
#
#	scripts/bench.sh > old.txt   # on the baseline commit
#	scripts/bench.sh > new.txt
#	benchstat old.txt new.txt
#
# Check mode: `scripts/bench.sh --check [count]` runs fresh benchmarks
# and FAILS (exit 1) if either fast kernel's ns/op regressed more than
# BENCH_DRIFT_FACTOR x against its committed snapshot; it never
# rewrites the snapshots. BENCH_DRIFT_FACTOR defaults to 2.0 — generous
# because CI machines differ from the machine that recorded the
# snapshot; it is a tripwire for algorithmic regressions (e.g. a naive
# kernel sneaking back in as default), not a precise perf gate.
# Override per run: BENCH_DRIFT_FACTOR=1.5 scripts/bench.sh --check
#
# Usage: scripts/bench.sh [--check] [count]   (default -count 5; --check defaults to 3)
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "--check" ]; then
	CHECK=1
	shift
fi

if [ "$CHECK" = 1 ]; then
	COUNT="${1:-3}"
else
	COUNT="${1:-5}"
fi

FACTOR="${BENCH_DRIFT_FACTOR:-2.0}"

# check_drift SNAPSHOT_FILE KEY FRESH_SUMMARY — compare one ns/op
# metric between a fresh summary and the committed snapshot.
check_drift() {
	local file="$1" key="$2" summary="$3"
	if [ ! -f "$file" ]; then
		echo "bench.sh --check: no $file snapshot to compare against" >&2
		exit 1
	fi
	local fresh base
	fresh="$(echo "$summary" | awk -F'[ ,]+' -v k="\"$key\":" '$2 == k { print $3 }')"
	base="$(awk -F'[ ,]+' -v k="\"$key\":" '$2 == k { print $3 }' "$file")"
	if [ -z "$fresh" ] || [ -z "$base" ]; then
		echo "bench.sh --check: could not parse $key (fresh='$fresh' base='$base')" >&2
		exit 1
	fi
	echo
	echo "bench.sh --check: $key fresh ${fresh} ns/op vs snapshot ${base} ns/op (allowed ${FACTOR}x)"
	awk -v fresh="$fresh" -v base="$base" -v factor="$FACTOR" -v key="$key" 'BEGIN {
		if (fresh > base * factor) {
			printf "bench.sh --check: REGRESSION in %s: %.0f ns/op > %.2f x %.0f ns/op\n", key, fresh, factor, base > "/dev/stderr"
			exit 1
		}
		printf "bench.sh --check: ok (%.2fx of snapshot)\n", fresh / base
	}'
}

echo "== residence kernel =="
RAW="$(go test -run '^$' -bench '^BenchmarkResidenceKernel$' -benchmem -count "$COUNT" .)"
echo "$RAW"

RES_SUMMARY="$(echo "$RAW" | awk -v count="$COUNT" '
/^BenchmarkResidenceKernel\/separable/ { sep += $3; nsep++ }
/^BenchmarkResidenceKernel\/naive/     { nai += $3; nnai++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nsep == 0 || nnai == 0) {
		print "bench.sh: no residence benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	sep /= nsep; nai /= nnai
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkResidenceKernel\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"separable_ns_per_op\": %.0f,\n", sep
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f\n", nai / sep
	printf "}\n"
}')"

echo
echo "== layered DP kernel (GOMCDS) =="
RAW_DP="$(go test -run '^$' -bench '^(BenchmarkShortestLayeredPath|BenchmarkGOMCDS)$' -benchmem -count "$COUNT" .)"
echo "$RAW_DP"

SCHED_SUMMARY="$(echo "$RAW_DP" | awk -v count="$COUNT" '
/^BenchmarkShortestLayeredPath\/sweep\/16x16/ { swp += $3; nswp++ }
/^BenchmarkShortestLayeredPath\/naive\/16x16/ { nai += $3; nnai++ }
/^BenchmarkGOMCDS\/sweep/                     { gsw += $3; ngsw++ }
/^BenchmarkGOMCDS\/naive/                     { gna += $3; ngna++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nswp == 0 || nnai == 0 || ngsw == 0 || ngna == 0) {
		print "bench.sh: no layered-DP benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	swp /= nswp; nai /= nnai; gsw /= ngsw; gna /= ngna
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkShortestLayeredPath\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"sweep_ns_per_op\": %.0f,\n", swp
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f,\n", nai / swp
	printf "  \"gomcds_sweep_ns_per_op\": %.0f,\n", gsw
	printf "  \"gomcds_naive_ns_per_op\": %.0f,\n", gna
	printf "  \"gomcds_speedup\": %.2f\n", gna / gsw
	printf "}\n"
}')"

echo
echo "== incremental rescheduling (delta) =="
RAW_DELTA="$(go test -run '^$' -bench '^BenchmarkDeltaApply$' -benchmem -count "$COUNT" .)"
echo "$RAW_DELTA"

DELTA_SUMMARY="$(echo "$RAW_DELTA" | awk -v count="$COUNT" '
/^BenchmarkDeltaApply\/incremental/ { inc += $3; ninc++ }
/^BenchmarkDeltaApply\/full/        { ful += $3; nful++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (ninc == 0 || nful == 0) {
		print "bench.sh: no delta benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	inc /= ninc; ful /= nful
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkDeltaApply\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"windows\": 64,\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"incremental_ns_per_op\": %.0f,\n", inc
	printf "  \"full_ns_per_op\": %.0f,\n", ful
	printf "  \"speedup\": %.2f\n", ful / inc
	printf "}\n"
}')"

if [ "$CHECK" = 1 ]; then
	check_drift BENCH_RESIDENCE.json separable_ns_per_op "$RES_SUMMARY"
	check_drift BENCH_SCHED.json sweep_ns_per_op "$SCHED_SUMMARY"
	check_drift BENCH_SCHED.json gomcds_sweep_ns_per_op "$SCHED_SUMMARY"
	check_drift BENCH_DELTA.json incremental_ns_per_op "$DELTA_SUMMARY"
else
	echo "$RES_SUMMARY" > BENCH_RESIDENCE.json
	echo "$SCHED_SUMMARY" > BENCH_SCHED.json
	echo "$DELTA_SUMMARY" > BENCH_DELTA.json
	echo
	echo "bench.sh: wrote BENCH_RESIDENCE.json, BENCH_SCHED.json and BENCH_DELTA.json"
	cat BENCH_RESIDENCE.json BENCH_SCHED.json BENCH_DELTA.json
fi
