#!/usr/bin/env bash
# Residence-kernel benchmark snapshot: runs BenchmarkResidenceKernel
# (separable prefix-sum kernel vs naive per-cell kernel on a 16x16
# array with dense windows), prints the raw benchstat-compatible
# output, and records ns/op for both kernels plus the speedup in
# BENCH_RESIDENCE.json. Compare two runs with:
#
#	scripts/bench.sh > old.txt   # on the baseline commit
#	scripts/bench.sh > new.txt
#	benchstat old.txt new.txt
#
# Usage: scripts/bench.sh [count]   (default -count 5)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-5}"
RAW="$(go test -run '^$' -bench '^BenchmarkResidenceKernel$' -benchmem -count "$COUNT" .)"
echo "$RAW"

echo "$RAW" | awk -v count="$COUNT" '
/^BenchmarkResidenceKernel\/separable/ { sep += $3; nsep++ }
/^BenchmarkResidenceKernel\/naive/     { nai += $3; nnai++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nsep == 0 || nnai == 0) {
		print "bench.sh: no benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	sep /= nsep; nai /= nnai
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkResidenceKernel\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"separable_ns_per_op\": %.0f,\n", sep
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f\n", nai / sep
	printf "}\n"
}' > BENCH_RESIDENCE.json

echo
echo "bench.sh: wrote BENCH_RESIDENCE.json"
cat BENCH_RESIDENCE.json
