#!/usr/bin/env bash
# Kernel benchmark snapshots and drift guards.
#
# Snapshot mode (default): runs the four headline comparisons —
# BenchmarkResidenceKernel (separable prefix-sum residence kernel vs
# naive per-cell kernel, 16x16 array), BenchmarkShortestLayeredPath
# + BenchmarkGOMCDS (separable min-plus sweep DP vs dense O(P²)
# relaxation, 16x16 array), BenchmarkDeltaApply (incremental session
# rescheduling one edited window vs a from-scratch rebuild, 16x16
# array, 64 windows), and the service hot path (BenchmarkServeSchedule
# closed-loop p50/p99 latency and allocs/op, plus the zero-alloc
# kernels BenchmarkResidenceRow and BenchmarkSolveBatch/batch, which
# FAIL the snapshot if they ever allocate) — prints the raw
# benchstat-compatible output, and records the metrics in
# BENCH_RESIDENCE.json, BENCH_SCHED.json, BENCH_DELTA.json and
# BENCH_SERVE.json. Compare two runs with:
#
#	scripts/bench.sh > old.txt   # on the baseline commit
#	scripts/bench.sh > new.txt
#	benchstat old.txt new.txt
#
# Check mode: `scripts/bench.sh --check [count]` runs fresh benchmarks
# and FAILS (exit 1) if either fast kernel's ns/op regressed more than
# BENCH_DRIFT_FACTOR x against its committed snapshot; it never
# rewrites the snapshots. It also delegates to scripts/loadtest.sh
# --check, which guards the cluster-path p99s in BENCH_CLUSTER.json
# (refresh that snapshot with scripts/loadtest.sh). BENCH_DRIFT_FACTOR defaults to 2.0 — generous
# because CI machines differ from the machine that recorded the
# snapshot; it is a tripwire for algorithmic regressions (e.g. a naive
# kernel sneaking back in as default), not a precise perf gate.
# Override per run: BENCH_DRIFT_FACTOR=1.5 scripts/bench.sh --check
#
# Usage: scripts/bench.sh [--check] [count]   (default -count 5; --check defaults to 3)
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "--check" ]; then
	CHECK=1
	shift
fi

if [ "$CHECK" = 1 ]; then
	COUNT="${1:-3}"
else
	COUNT="${1:-5}"
fi

FACTOR="${BENCH_DRIFT_FACTOR:-2.0}"

# check_drift SNAPSHOT_FILE KEY FRESH_SUMMARY [UNIT] — compare one
# numeric metric between a fresh summary and the committed snapshot.
check_drift() {
	local file="$1" key="$2" summary="$3" unit="${4:-ns/op}"
	if [ ! -f "$file" ]; then
		echo "bench.sh --check: no $file snapshot to compare against" >&2
		exit 1
	fi
	local fresh base
	fresh="$(echo "$summary" | awk -F'[ ,]+' -v k="\"$key\":" '$2 == k { print $3 }')"
	base="$(awk -F'[ ,]+' -v k="\"$key\":" '$2 == k { print $3 }' "$file")"
	if [ -z "$fresh" ] || [ -z "$base" ]; then
		echo "bench.sh --check: could not parse $key (fresh='$fresh' base='$base')" >&2
		exit 1
	fi
	echo
	echo "bench.sh --check: $key fresh ${fresh} ${unit} vs snapshot ${base} ${unit} (allowed ${FACTOR}x)"
	awk -v fresh="$fresh" -v base="$base" -v factor="$FACTOR" -v key="$key" -v unit="$unit" 'BEGIN {
		if (fresh > base * factor) {
			printf "bench.sh --check: REGRESSION in %s: %.0f %s > %.2f x %.0f %s\n", key, fresh, unit, factor, base, unit > "/dev/stderr"
			exit 1
		}
		printf "bench.sh --check: ok (%.2fx of snapshot)\n", fresh / base
	}'
}

echo "== residence kernel =="
RAW="$(go test -run '^$' -bench '^BenchmarkResidenceKernel$' -benchmem -count "$COUNT" .)"
echo "$RAW"

RES_SUMMARY="$(echo "$RAW" | awk -v count="$COUNT" '
/^BenchmarkResidenceKernel\/separable/ { sep += $3; nsep++ }
/^BenchmarkResidenceKernel\/naive/     { nai += $3; nnai++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nsep == 0 || nnai == 0) {
		print "bench.sh: no residence benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	sep /= nsep; nai /= nnai
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkResidenceKernel\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"separable_ns_per_op\": %.0f,\n", sep
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f\n", nai / sep
	printf "}\n"
}')"

echo
echo "== layered DP kernel (GOMCDS) =="
RAW_DP="$(go test -run '^$' -bench '^(BenchmarkShortestLayeredPath|BenchmarkGOMCDS)$' -benchmem -count "$COUNT" .)"
echo "$RAW_DP"

SCHED_SUMMARY="$(echo "$RAW_DP" | awk -v count="$COUNT" '
/^BenchmarkShortestLayeredPath\/sweep\/16x16/ { swp += $3; nswp++ }
/^BenchmarkShortestLayeredPath\/naive\/16x16/ { nai += $3; nnai++ }
/^BenchmarkGOMCDS\/sweep/                     { gsw += $3; ngsw++ }
/^BenchmarkGOMCDS\/naive/                     { gna += $3; ngna++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nswp == 0 || nnai == 0 || ngsw == 0 || ngna == 0) {
		print "bench.sh: no layered-DP benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	swp /= nswp; nai /= nnai; gsw /= ngsw; gna /= ngna
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkShortestLayeredPath\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"sweep_ns_per_op\": %.0f,\n", swp
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f,\n", nai / swp
	printf "  \"gomcds_sweep_ns_per_op\": %.0f,\n", gsw
	printf "  \"gomcds_naive_ns_per_op\": %.0f,\n", gna
	printf "  \"gomcds_speedup\": %.2f\n", gna / gsw
	printf "}\n"
}')"

echo
echo "== incremental rescheduling (delta) =="
RAW_DELTA="$(go test -run '^$' -bench '^BenchmarkDeltaApply$' -benchmem -count "$COUNT" .)"
echo "$RAW_DELTA"

DELTA_SUMMARY="$(echo "$RAW_DELTA" | awk -v count="$COUNT" '
/^BenchmarkDeltaApply\/incremental/ { inc += $3; ninc++ }
/^BenchmarkDeltaApply\/full/        { ful += $3; nful++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (ninc == 0 || nful == 0) {
		print "bench.sh: no delta benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	inc /= ninc; ful /= nful
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkDeltaApply\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"windows\": 64,\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"incremental_ns_per_op\": %.0f,\n", inc
	printf "  \"full_ns_per_op\": %.0f,\n", ful
	printf "  \"speedup\": %.2f\n", ful / inc
	printf "}\n"
}')"

echo
echo "== service hot path =="
RAW_SERVE="$(go test -run '^$' -bench '^(BenchmarkServeSchedule|BenchmarkResidenceRow|BenchmarkSolveBatch)$' -benchmem -count "$COUNT" .)"
echo "$RAW_SERVE"

# Custom metrics (p50-us/p99-us) and allocs/op sit at varying field
# positions, so the awk scans each line for the unit token and takes
# the value before it. The two zero-alloc kernels are hard gates: a
# single allocation per op fails the run, snapshot mode included.
SERVE_SUMMARY="$(echo "$RAW_SERVE" | awk -v count="$COUNT" '
function metric(unit,   i) {
	for (i = 2; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return 0
}
/^BenchmarkServeSchedule\/hot/ {
	hot += $3; hp50 += metric("p50-us"); hp99 += metric("p99-us")
	hal += metric("allocs/op"); nhot++
}
/^BenchmarkServeSchedule\/parallel/ {
	par += $3; pal += metric("allocs/op"); npar++
}
/^BenchmarkResidenceRow/    { rr += $3; rra += metric("allocs/op"); nrr++ }
/^BenchmarkSolveBatch\/batch/ { sb += $3; sba += metric("allocs/op"); nsb++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nhot == 0 || npar == 0 || nrr == 0 || nsb == 0) {
		print "bench.sh: no service benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	if (rra > 0 || sba > 0) {
		printf "bench.sh: zero-alloc kernel regressed: ResidenceRow %.0f allocs, SolveBatch/batch %.0f allocs (want 0)\n", \
			rra / nrr, sba / nsb > "/dev/stderr"
		exit 1
	}
	hot /= nhot; hp50 /= nhot; hp99 /= nhot; hal /= nhot
	par /= npar; pal /= npar; rr /= nrr; sb /= nsb
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkServeSchedule\",\n"
	printf "  \"instance\": \"lu/16 on 4x4, gomcds, cache-hot\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"hot_ns_per_op\": %.0f,\n", hot
	printf "  \"hot_p50_us\": %.0f,\n", hp50
	printf "  \"hot_p99_us\": %.0f,\n", hp99
	printf "  \"hot_allocs_per_op\": %.0f,\n", hal
	printf "  \"parallel_ns_per_op\": %.0f,\n", par
	printf "  \"parallel_allocs_per_op\": %.0f,\n", pal
	printf "  \"residence_row_ns_per_op\": %.0f,\n", rr
	printf "  \"residence_row_allocs_per_op\": 0,\n"
	printf "  \"solve_batch_ns_per_op\": %.0f,\n", sb
	printf "  \"solve_batch_allocs_per_op\": 0\n"
	printf "}\n"
}')"

if [ "$CHECK" = 1 ]; then
	check_drift BENCH_RESIDENCE.json separable_ns_per_op "$RES_SUMMARY"
	check_drift BENCH_SCHED.json sweep_ns_per_op "$SCHED_SUMMARY"
	check_drift BENCH_SCHED.json gomcds_sweep_ns_per_op "$SCHED_SUMMARY"
	check_drift BENCH_DELTA.json incremental_ns_per_op "$DELTA_SUMMARY"
	check_drift BENCH_SERVE.json hot_ns_per_op "$SERVE_SUMMARY"
	check_drift BENCH_SERVE.json hot_p99_us "$SERVE_SUMMARY" us
	check_drift BENCH_SERVE.json hot_allocs_per_op "$SERVE_SUMMARY" allocs/op
	echo
	echo "== cluster loadtest drift (scripts/loadtest.sh --check) =="
	scripts/loadtest.sh --check
else
	echo "$RES_SUMMARY" > BENCH_RESIDENCE.json
	echo "$SCHED_SUMMARY" > BENCH_SCHED.json
	echo "$DELTA_SUMMARY" > BENCH_DELTA.json
	echo "$SERVE_SUMMARY" > BENCH_SERVE.json
	echo
	echo "bench.sh: wrote BENCH_RESIDENCE.json, BENCH_SCHED.json, BENCH_DELTA.json and BENCH_SERVE.json"
	cat BENCH_RESIDENCE.json BENCH_SCHED.json BENCH_DELTA.json BENCH_SERVE.json
fi
