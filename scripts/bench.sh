#!/usr/bin/env bash
# Residence-kernel benchmark snapshot and drift guard.
#
# Snapshot mode (default): runs BenchmarkResidenceKernel (separable
# prefix-sum kernel vs naive per-cell kernel on a 16x16 array with
# dense windows), prints the raw benchstat-compatible output, and
# records ns/op for both kernels plus the speedup in
# BENCH_RESIDENCE.json. Compare two runs with:
#
#	scripts/bench.sh > old.txt   # on the baseline commit
#	scripts/bench.sh > new.txt
#	benchstat old.txt new.txt
#
# Check mode: `scripts/bench.sh --check [count]` runs a fresh benchmark
# and FAILS (exit 1) if the separable kernel's ns/op regressed more
# than BENCH_DRIFT_FACTOR x against the committed BENCH_RESIDENCE.json
# snapshot; it never rewrites the snapshot. BENCH_DRIFT_FACTOR defaults
# to 2.0 — generous because CI machines differ from the machine that
# recorded the snapshot; it is a tripwire for algorithmic regressions
# (e.g. the naive kernel sneaking back in as default), not a precise
# perf gate. Override per run: BENCH_DRIFT_FACTOR=1.5 scripts/bench.sh --check
#
# Usage: scripts/bench.sh [--check] [count]   (default -count 5; --check defaults to 3)
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "--check" ]; then
	CHECK=1
	shift
fi

if [ "$CHECK" = 1 ]; then
	COUNT="${1:-3}"
else
	COUNT="${1:-5}"
fi

RAW="$(go test -run '^$' -bench '^BenchmarkResidenceKernel$' -benchmem -count "$COUNT" .)"
echo "$RAW"

SUMMARY="$(echo "$RAW" | awk -v count="$COUNT" '
/^BenchmarkResidenceKernel\/separable/ { sep += $3; nsep++ }
/^BenchmarkResidenceKernel\/naive/     { nai += $3; nnai++ }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
END {
	if (nsep == 0 || nnai == 0) {
		print "bench.sh: no benchmark samples parsed" > "/dev/stderr"
		exit 1
	}
	sep /= nsep; nai /= nnai
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkResidenceKernel\",\n"
	printf "  \"grid\": \"16x16\",\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"count\": %d,\n", count
	printf "  \"separable_ns_per_op\": %.0f,\n", sep
	printf "  \"naive_ns_per_op\": %.0f,\n", nai
	printf "  \"speedup\": %.2f\n", nai / sep
	printf "}\n"
}')"

if [ "$CHECK" = 1 ]; then
	if [ ! -f BENCH_RESIDENCE.json ]; then
		echo "bench.sh --check: no BENCH_RESIDENCE.json snapshot to compare against" >&2
		exit 1
	fi
	FACTOR="${BENCH_DRIFT_FACTOR:-2.0}"
	FRESH="$(echo "$SUMMARY" | awk -F'[ ,]+' '/"separable_ns_per_op"/ { print $3 }')"
	BASE="$(awk -F'[ ,]+' '/"separable_ns_per_op"/ { print $3 }' BENCH_RESIDENCE.json)"
	if [ -z "$FRESH" ] || [ -z "$BASE" ]; then
		echo "bench.sh --check: could not parse separable_ns_per_op (fresh='$FRESH' base='$BASE')" >&2
		exit 1
	fi
	echo
	echo "bench.sh --check: fresh separable ${FRESH} ns/op vs snapshot ${BASE} ns/op (allowed ${FACTOR}x)"
	awk -v fresh="$FRESH" -v base="$BASE" -v factor="$FACTOR" 'BEGIN {
		if (fresh > base * factor) {
			printf "bench.sh --check: REGRESSION: %.0f ns/op > %.2f x %.0f ns/op\n", fresh, factor, base > "/dev/stderr"
			exit 1
		}
		printf "bench.sh --check: ok (%.2fx of snapshot)\n", fresh / base
	}'
else
	echo "$SUMMARY" > BENCH_RESIDENCE.json
	echo
	echo "bench.sh: wrote BENCH_RESIDENCE.json"
	cat BENCH_RESIDENCE.json
fi
