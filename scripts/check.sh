#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus the full test suite
# with the race detector (the capture recorder, parallel table builder,
# worker pools and the scheduling service are all concurrency-bearing).
# Tier-1 remains `go build ./... && go test ./...`; run this script
# before merging anything that touches scheduling, cost evaluation or
# concurrency.
#
# Usage: scripts/check.sh [extra go test args, e.g. -short]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== build (incl. service + pimserve) =="
go build ./...
go build ./internal/service ./cmd/pimserve

echo "== go test -race =="
go test -race "$@" ./...

# The scheduling service's load referee: >= 100 concurrent HTTP clients
# against /schedule under the race detector, asserting responses match
# single-threaded sched runs bit-for-bit and that the fingerprint cache
# skipped table rebuilds. It already ran above as part of ./...; this
# dedicated -short invocation keeps a fast, named gate for the service
# even when the full suite is invoked with a narrower pattern.
echo "== service load test (-race -short) =="
go test -race -short -run '^TestLoadConcurrentClients$' ./internal/service

# The incremental-scheduling referees: the differential replay referee
# (seeded delta sequences pinning sessions to from-scratch recomputation
# after every step) and the 32-client single-session storm, both under
# the race detector. Like the load test, these already ran as part of
# ./... above; the named gates survive narrower invocations.
echo "== delta replay referee (-race) =="
go test -race -run '^TestDeltaReplayAgrees$' ./internal/verify
go test -race -run '^TestHTTPSessionConcurrentClients$' ./internal/service

# Hot-path allocation pins: the steady-state kernels (residence-row
# pricing, batched sweep DP, resumable DP, session delta patch) must be
# exactly zero allocs/op, and the cache-hot full-service Schedule call
# must stay inside its fixed budget. They already ran under ./... above;
# this named gate re-runs them without the race runtime so the pins
# measure the production allocator, and survives narrower invocations.
echo "== allocation pins (no race) =="
go test -run '^(TestSolveBatchZeroAlloc|TestSolveFromIntoZeroAlloc)$' -v ./internal/costgraph
go test -run '^(TestResidenceRowIntoZeroAlloc|TestPatchEditItemZeroAlloc|TestPatchRemoveWindowZeroAlloc)$' -v ./internal/cost
go test -run '^(TestApplyEditItemZeroAlloc|TestScheduleIncrementalSuffixResumeAllocs)$' -v ./internal/delta
go test -run '^TestScheduleSteadyStateAllocsBounded$' -v ./internal/service

# Two-tier cache gates: the bit-identity referee (a schedule served via
# a cold-tier promotion must match the flat-table schedule byte for
# byte, without a rebuild) and the demote/promote/evict churn stress,
# both under the race detector; plus the DoS-guard regressions proving
# every table-ingesting endpoint (session import, peer-fill adopt,
# prefill) refuses payloads over the cell budget before allocating.
# All already ran under ./... above; the named gates survive narrower
# invocations.
echo "== two-tier cache gates (-race) =="
go test -race -run '^(TestColdTierHitBitIdentical|TestCacheTierRaceStress|TestImportRejectsOversizedTablePayload)$' ./internal/service
go test -race -run '^(TestPeerFillRejectsOversizedTablePayload|TestPrefillRejectsOversizedPeerTable|TestPeerFillNegotiatesV2)$' ./internal/cluster

# Session-lifecycle race gates: an in-flight op racing DELETE
# /session/{id} must end in a clean 404 with the sessions gauge and the
# MaxSessions slot settling exactly once. The stress variant hammers
# the interleaving under the race detector; the deterministic variant
# uses the service's test hook to force the narrow window.
echo "== session delete race gates (-race) =="
go test -race -run '^(TestSessionOpRacingDeleteGets404|TestSessionDeleteRaceStress)$' ./internal/service

# The cluster referees: the in-process multi-backend harness (router
# over three real services) proving routed, batched, and peer-filled
# responses bit-identical to single-node serial runs with exactly one
# table built per distinct trace, plus kill/restart churn losing no
# accepted request to a non-retried error. The full 100k-spec load
# variant runs as part of ./... above when invoked without -short;
# this named -short gate keeps the choreography covered even under
# narrower invocations.
echo "== cluster differential harness (-race -short) =="
go test -race -short -run '^TestCluster' ./internal/cluster

# Metrics scrape gate: boot a real pimserve, issue one schedule request,
# and scrape /metrics, failing unless the expected series are present.
# This exercises the full observability path (registry wiring, stage
# spans, exposition rendering) over an actual socket, not httptest.
echo "== /metrics scrape gate =="
go build -o /tmp/pimserve-check ./cmd/pimserve
SCRAPE_LOG="$(mktemp)"
/tmp/pimserve-check -addr 127.0.0.1:0 >"$SCRAPE_LOG" 2>&1 &
SCRAPE_PID=$!
trap 'kill -TERM $SCRAPE_PID 2>/dev/null; wait $SCRAPE_PID 2>/dev/null || true' EXIT
BASE=""
for _ in $(seq 100); do
	BASE="$(sed -n 's/^pimserve: listening on \([^ ]*\).*/\1/p' "$SCRAPE_LOG")"
	[ -n "$BASE" ] && curl -sf "http://$BASE/healthz" >/dev/null 2>&1 && break
	BASE=""
	sleep 0.1
done
[ -n "$BASE" ] || { echo "check.sh: pimserve never came up"; cat "$SCRAPE_LOG"; exit 1; }
curl -sf -X POST "http://$BASE/schedule" \
	--data-binary @examples/pimserve/request.json >/dev/null
SCRAPE="$(curl -sf "http://$BASE/metrics")"
for series in \
	'pim_requests_total 1' \
	'pim_requests_completed_total 1' \
	'pim_tables_built_total 1' \
	'pim_cache_misses_total 1' \
	'pim_stage_duration_seconds_bucket{stage="decode",le="+Inf"}' \
	'pim_stage_duration_seconds_bucket{stage="table.build",le="+Inf"}' \
	'pim_request_duration_seconds_count 1'; do
	if ! grep -qF "$series" <<<"$SCRAPE"; then
		echo "check.sh: /metrics scrape missing series: $series"
		echo "$SCRAPE"
		exit 1
	fi
done
kill -TERM $SCRAPE_PID
wait $SCRAPE_PID 2>/dev/null || true
trap - EXIT
rm -f "$SCRAPE_LOG"
echo "metrics scrape gate passed"

# Cluster scrape gate: boot a real three-shard fleet behind pimrouter,
# push a small multi-trace load through the router with pimload, and
# fail unless (a) the router's own pim_router_* series appear on its
# /metrics and (b) the fleet built exactly one residence table per
# distinct trace — the sharding invariant, observed over real sockets
# and separate processes rather than the in-process harness.
echo "== cluster scrape gate =="
CLUSTER_DIR="$(mktemp -d)"
go build -o "$CLUSTER_DIR/pimserve" ./cmd/pimserve
go build -o "$CLUSTER_DIR/pimrouter" ./cmd/pimrouter
go build -o "$CLUSTER_DIR/pimload" ./cmd/pimload
CLUSTER_PIDS=()
cluster_cleanup() {
	for pid in "${CLUSTER_PIDS[@]:-}"; do kill -TERM "$pid" 2>/dev/null || true; done
	for pid in "${CLUSTER_PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
	rm -rf "$CLUSTER_DIR"
}
trap cluster_cleanup EXIT
cluster_addr() { # LOGFILE PROGRAM
	local addr=""
	for _ in $(seq 100); do
		addr="$(sed -n "s/^$2: listening on \([^ ,]*\).*/\1/p" "$1")"
		[ -n "$addr" ] && curl -sf "http://$addr/healthz" >/dev/null 2>&1 && { echo "$addr"; return 0; }
		sleep 0.1
	done
	echo "check.sh: $2 never came up" >&2; cat "$1" >&2; return 1
}
CLUSTER_BACKENDS=""
CLUSTER_SHARDS=()
for i in 1 2 3; do
	"$CLUSTER_DIR/pimserve" -addr 127.0.0.1:0 -peer-fill >"$CLUSTER_DIR/shard$i.log" 2>&1 &
	CLUSTER_PIDS+=($!)
	ADDR="$(cluster_addr "$CLUSTER_DIR/shard$i.log" pimserve)"
	CLUSTER_SHARDS+=("$ADDR")
	CLUSTER_BACKENDS="${CLUSTER_BACKENDS:+$CLUSTER_BACKENDS,}$ADDR"
done
"$CLUSTER_DIR/pimrouter" -addr 127.0.0.1:0 -backends "$CLUSTER_BACKENDS" >"$CLUSTER_DIR/router.log" 2>&1 &
CLUSTER_PIDS+=($!)
ROUTER_ADDR="$(cluster_addr "$CLUSTER_DIR/router.log" pimrouter)"
"$CLUSTER_DIR/pimload" -url "http://$ROUTER_ADDR" -requests 24 -concurrency 4 -traces 6 >/dev/null
ROUTER_SCRAPE="$(curl -sf "http://$ROUTER_ADDR/metrics")"
for series in \
	'pim_router_backends_healthy 3' \
	'pim_router_backends_known 3'; do
	if ! grep -qF "$series" <<<"$ROUTER_SCRAPE"; then
		echo "check.sh: router /metrics missing series: $series"
		echo "$ROUTER_SCRAPE"
		exit 1
	fi
done
# With request coalescing, identical in-flight singles ride one
# upstream call: upstream sends plus coalesced joins must account for
# every one of the 24 client requests, and the latency histogram
# counts upstream sends only.
scrape_val() { sed -n "s/^$1 \([0-9][0-9]*\)\$/\1/p" <<<"$ROUTER_SCRAPE"; }
REQS="$(scrape_val pim_router_requests_total)"
COAL="$(scrape_val pim_router_coalesced_total)"
DUR="$(scrape_val pim_router_request_duration_seconds_count)"
if [ -z "$REQS" ] || [ -z "$COAL" ] || [ -z "$DUR" ]; then
	echo "check.sh: router /metrics missing request accounting series"
	echo "$ROUTER_SCRAPE"
	exit 1
fi
if [ $((REQS + COAL)) -ne 24 ] || [ "$DUR" -ne "$REQS" ]; then
	echo "check.sh: router accounting: requests=$REQS coalesced=$COAL duration_count=$DUR; want requests+coalesced=24, duration_count=requests"
	exit 1
fi
FLEET_BUILT=0
for ADDR in "${CLUSTER_SHARDS[@]}"; do
	BUILT="$(curl -sf "http://$ADDR/stats" | tr -d '\n' | sed -n 's/.*"tables_built": *\([0-9]*\).*/\1/p')"
	FLEET_BUILT=$((FLEET_BUILT + BUILT))
done
if [ "$FLEET_BUILT" -ne 6 ]; then
	echo "check.sh: fleet tables_built=$FLEET_BUILT, want 6 (one per distinct trace)"
	exit 1
fi
echo "cluster scrape gate passed (fleet built 6/6 tables)"

# Cluster failover gate: with replication on (R=2 by default) every
# key's table was pushed to its replica while the fleet was healthy.
# Kill one of the three shards outright (SIGKILL, no drain), wait for
# the health loop to eject it, and re-drive the same load: the fleet
# must keep answering and the surviving shards must not build a single
# new table — failover serves from the replicas that already adopted
# them.
echo "== cluster failover gate =="
PENDING=""
for _ in $(seq 100); do
	PENDING="$(curl -sf "http://$ROUTER_ADDR/stats" | tr -d '\n' | sed -n 's/.*"replica_fills_pending": *\([0-9]*\).*/\1/p')"
	[ "$PENDING" = "0" ] && break
	sleep 0.1
done
[ "$PENDING" = "0" ] || { echo "check.sh: replica fills never settled"; exit 1; }
survivor_built() {
	local total=0 built
	for ADDR in "${CLUSTER_SHARDS[@]:1}"; do
		built="$(curl -sf "http://$ADDR/stats" | tr -d '\n' | sed -n 's/.*"tables_built": *\([0-9]*\).*/\1/p')"
		total=$((total + built))
	done
	echo "$total"
}
PRE_KILL_BUILT="$(survivor_built)"
kill -9 "${CLUSTER_PIDS[0]}" 2>/dev/null || true
wait "${CLUSTER_PIDS[0]}" 2>/dev/null || true
for _ in $(seq 100); do
	curl -sf "http://$ROUTER_ADDR/metrics" | grep -q '^pim_router_backends_healthy 2$' && break
	sleep 0.1
done
if ! curl -sf "http://$ROUTER_ADDR/metrics" | grep -q '^pim_router_backends_healthy 2$'; then
	echo "check.sh: router never ejected the killed shard"
	exit 1
fi
"$CLUSTER_DIR/pimload" -url "http://$ROUTER_ADDR" -requests 24 -concurrency 4 -traces 6 >/dev/null
POST_KILL_BUILT="$(survivor_built)"
if [ "$POST_KILL_BUILT" -ne "$PRE_KILL_BUILT" ]; then
	echo "check.sh: survivors built $((POST_KILL_BUILT - PRE_KILL_BUILT)) new tables across a shard kill; replication should make failover rebuild-free"
	exit 1
fi
cluster_cleanup
trap - EXIT
echo "cluster failover gate passed (survivors built 0 new tables across a shard kill)"

# Fuzz smoke: run each fuzz target's engine briefly under the race
# detector on top of the committed seed corpus. `go test -fuzz` accepts
# a pattern matching exactly one target, hence one invocation per
# target. FUZZTIME=0 skips the engine runs (seeds still ran above).
FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
	echo "== fuzz smoke (-race, $FUZZTIME per target) =="
	go test -race -run '^$' -fuzz '^FuzzResidenceKernels$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzLayeredKernels$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzVerifyCost$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzCheckSchedule$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzDeltaApply$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzFingerprint$' -fuzztime "$FUZZTIME" ./internal/trace
	go test -race -run '^$' -fuzz '^FuzzBatchDecode$' -fuzztime "$FUZZTIME" ./internal/service
	go test -race -run '^$' -fuzz '^FuzzTableCodec$' -fuzztime "$FUZZTIME" ./internal/cost
	go test -race -run '^$' -fuzz '^FuzzTableCodecV2$' -fuzztime "$FUZZTIME" ./internal/cost
fi

echo "check.sh: all gates passed"
