#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus the full test suite
# with the race detector (the capture recorder, parallel table builder
# and worker pools are all concurrency-bearing). Tier-1 remains
# `go build ./... && go test ./...`; run this script before merging
# anything that touches scheduling, cost evaluation or concurrency.
#
# Usage: scripts/check.sh [extra go test args, e.g. -short]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race "$@" ./...

echo "check.sh: all gates passed"
