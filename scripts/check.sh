#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus the full test suite
# with the race detector (the capture recorder, parallel table builder,
# worker pools and the scheduling service are all concurrency-bearing).
# Tier-1 remains `go build ./... && go test ./...`; run this script
# before merging anything that touches scheduling, cost evaluation or
# concurrency.
#
# Usage: scripts/check.sh [extra go test args, e.g. -short]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== build (incl. service + pimserve) =="
go build ./...
go build ./internal/service ./cmd/pimserve

echo "== go test -race =="
go test -race "$@" ./...

# The scheduling service's load referee: >= 100 concurrent HTTP clients
# against /schedule under the race detector, asserting responses match
# single-threaded sched runs bit-for-bit and that the fingerprint cache
# skipped table rebuilds. It already ran above as part of ./...; this
# dedicated -short invocation keeps a fast, named gate for the service
# even when the full suite is invoked with a narrower pattern.
echo "== service load test (-race -short) =="
go test -race -short -run '^TestLoadConcurrentClients$' ./internal/service

# Fuzz smoke: run each fuzz target's engine briefly under the race
# detector on top of the committed seed corpus. `go test -fuzz` accepts
# a pattern matching exactly one target, hence one invocation per
# target. FUZZTIME=0 skips the engine runs (seeds still ran above).
FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
	echo "== fuzz smoke (-race, $FUZZTIME per target) =="
	go test -race -run '^$' -fuzz '^FuzzResidenceKernels$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzVerifyCost$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzCheckSchedule$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzFingerprint$' -fuzztime "$FUZZTIME" ./internal/trace
fi

echo "check.sh: all gates passed"
