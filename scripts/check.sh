#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus the full test suite
# with the race detector (the capture recorder, parallel table builder
# and worker pools are all concurrency-bearing). Tier-1 remains
# `go build ./... && go test ./...`; run this script before merging
# anything that touches scheduling, cost evaluation or concurrency.
#
# Usage: scripts/check.sh [extra go test args, e.g. -short]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race "$@" ./...

# Fuzz smoke: run each fuzz target's engine briefly under the race
# detector on top of the committed seed corpus. `go test -fuzz` accepts
# a pattern matching exactly one target, hence one invocation per
# target. FUZZTIME=0 skips the engine runs (seeds still ran above).
FUZZTIME="${FUZZTIME:-10s}"
if [ "$FUZZTIME" != "0" ]; then
	echo "== fuzz smoke (-race, $FUZZTIME per target) =="
	go test -race -run '^$' -fuzz '^FuzzResidenceKernels$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzVerifyCost$' -fuzztime "$FUZZTIME" ./internal/verify
	go test -race -run '^$' -fuzz '^FuzzCheckSchedule$' -fuzztime "$FUZZTIME" ./internal/verify
fi

echo "check.sh: all gates passed"
