#!/usr/bin/env bash
# Cluster load snapshot and drift guard: boots three pimserve shards
# and one pimrouter as real separate processes, drives them with
# pimload (a closed-loop singles run, a batched run, then a failover
# run with one shard SIGKILLed), and records router-path latency
# percentiles plus per-shard cache effectiveness in BENCH_CLUSTER.json.
# The run FAILS unless the fleet built exactly one residence table per
# distinct trace, and unless the surviving shards build nothing new
# across the kill (replication makes failover rebuild-free).
#
# Snapshot mode (default): runs the load, prints the summary, rewrites
# BENCH_CLUSTER.json.
#
# Check mode: `scripts/loadtest.sh --check` runs the same load and
# FAILS (exit 1) if the singles or batch p99 regressed more than
# LOADTEST_DRIFT_FACTOR x against the committed snapshot (default 3.0
# — multi-process p99 on a shared CI box is noisy; this is a tripwire
# for routing or caching regressions, not a precise perf gate). It
# never rewrites the snapshot. bench.sh --check delegates here.
#
# Tunables (env): LOADTEST_REQUESTS (default 600 singles),
# LOADTEST_BATCHES (default 60 batch requests x 50 specs),
# LOADTEST_CONCURRENCY (default 8), LOADTEST_TRACES (default 8).
#
# Usage: scripts/loadtest.sh [--check]
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "--check" ]; then
	CHECK=1
	shift
fi

REQUESTS="${LOADTEST_REQUESTS:-600}"
BATCHES="${LOADTEST_BATCHES:-60}"
BATCH_SIZE=50
CONCURRENCY="${LOADTEST_CONCURRENCY:-8}"
TRACES="${LOADTEST_TRACES:-8}"
FACTOR="${LOADTEST_DRIFT_FACTOR:-3.0}"

# pimload's deterministic generator yields 96 distinct trace shapes
# (4 kernels x 8 sizes x 3 grids) before refusing; beyond that the
# one-table-per-trace invariant below would be counting shapes, not
# traces.
if [ "$TRACES" -gt 96 ]; then
	echo "loadtest.sh: LOADTEST_TRACES=$TRACES exceeds the 96 distinct shapes pimload generates" >&2
	exit 1
fi

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do
		kill -TERM "$pid" 2>/dev/null || true
	done
	for pid in "${PIDS[@]:-}"; do
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build =="
go build -o "$WORK/pimserve" ./cmd/pimserve
go build -o "$WORK/pimrouter" ./cmd/pimrouter
go build -o "$WORK/pimload" ./cmd/pimload

# wait_addr LOGFILE PROGRAM — poll a daemon's log for its concrete
# listen address (both programs print it once the listener is up).
wait_addr() {
	local log="$1" prog="$2" addr=""
	for _ in $(seq 200); do
		addr="$(sed -n "s/^$prog: listening on \([^ ,]*\).*/\1/p" "$log")"
		if [ -n "$addr" ] && curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
			echo "$addr"
			return 0
		fi
		sleep 0.05
	done
	echo "loadtest.sh: $prog never came up" >&2
	cat "$log" >&2
	return 1
}

echo "== boot 3 shards + router =="
BACKENDS=""
SHARD_ADDRS=()
for i in 1 2 3; do
	"$WORK/pimserve" -addr 127.0.0.1:0 -peer-fill >"$WORK/shard$i.log" 2>&1 &
	PIDS+=($!)
	ADDR="$(wait_addr "$WORK/shard$i.log" pimserve)"
	SHARD_ADDRS+=("$ADDR")
	BACKENDS="${BACKENDS:+$BACKENDS,}$ADDR"
done
"$WORK/pimrouter" -addr 127.0.0.1:0 -backends "$BACKENDS" -health-interval 250ms \
	>"$WORK/router.log" 2>&1 &
PIDS+=($!)
ROUTER="$(wait_addr "$WORK/router.log" pimrouter)"
echo "router http://$ROUTER over $BACKENDS"

echo "== singles: $REQUESTS requests, $CONCURRENCY workers, $TRACES traces =="
SINGLES="$("$WORK/pimload" -url "http://$ROUTER" -requests "$REQUESTS" \
	-concurrency "$CONCURRENCY" -traces "$TRACES")"
echo "$SINGLES"

echo "== batches: $BATCHES x $BATCH_SIZE specs =="
BATCHED="$("$WORK/pimload" -url "http://$ROUTER" -requests "$BATCHES" \
	-concurrency "$CONCURRENCY" -traces "$TRACES" -batch "$BATCH_SIZE")"
echo "$BATCHED"

# field JSON KEY — pull one numeric field out of a pimload report.
field() {
	echo "$1" | sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" | head -1
}

echo "== per-shard cache effectiveness =="
BUILT_TOTAL=0
BUILT_LIST=""
for ADDR in "${SHARD_ADDRS[@]}"; do
	STATS="$(curl -sf "http://$ADDR/stats")"
	BUILT="$(echo "$STATS" | tr -d '\n' | sed -n 's/.*"tables_built": *\([0-9]*\).*/\1/p')"
	echo "shard $ADDR tables_built=$BUILT"
	BUILT_TOTAL=$((BUILT_TOTAL + BUILT))
	BUILT_LIST="${BUILT_LIST:+$BUILT_LIST, }$BUILT"
done
# Both pimload runs cycle the same deterministic trace shapes, so the
# fleet must hold exactly one table per distinct trace: more means the
# router split a trace's keyspace across shards, fewer means requests
# were silently dropped.
if [ "$BUILT_TOTAL" -ne "$TRACES" ]; then
	echo "loadtest.sh: fleet tables_built=$BUILT_TOTAL, want $TRACES (one per distinct trace)" >&2
	exit 1
fi
echo "fleet tables_built=$BUILT_TOTAL over $TRACES distinct traces"

# Failover phase: with replication (R=2 default) every key's table has
# a pushed replica. Wait for the fills to settle, SIGKILL shard 1, let
# the health loop eject it, and re-run the singles load: requests fail
# over to replicas, the surviving shards build nothing new, and the
# failover-path p99 lands in the snapshot under the same drift guard.
echo "== failover: kill shard 1, re-drive $REQUESTS singles =="
PENDING=""
for _ in $(seq 200); do
	PENDING="$(curl -sf "http://$ROUTER/stats" | tr -d '\n' | sed -n 's/.*"replica_fills_pending": *\([0-9]*\).*/\1/p')"
	[ "$PENDING" = "0" ] && break
	sleep 0.05
done
[ "$PENDING" = "0" ] || { echo "loadtest.sh: replica fills never settled" >&2; exit 1; }
SURVIVOR_BUILT_PRE=0
for ADDR in "${SHARD_ADDRS[@]:1}"; do
	B="$(curl -sf "http://$ADDR/stats" | tr -d '\n' | sed -n 's/.*"tables_built": *\([0-9]*\).*/\1/p')"
	SURVIVOR_BUILT_PRE=$((SURVIVOR_BUILT_PRE + B))
done
kill -9 "${PIDS[0]}" 2>/dev/null || true
wait "${PIDS[0]}" 2>/dev/null || true
for _ in $(seq 200); do
	curl -sf "http://$ROUTER/metrics" | grep -q '^pim_router_backends_healthy 2$' && break
	sleep 0.05
done
if ! curl -sf "http://$ROUTER/metrics" | grep -q '^pim_router_backends_healthy 2$'; then
	echo "loadtest.sh: router never ejected the killed shard" >&2
	exit 1
fi
FAILOVER="$("$WORK/pimload" -url "http://$ROUTER" -requests "$REQUESTS" \
	-concurrency "$CONCURRENCY" -traces "$TRACES")"
echo "$FAILOVER"
SURVIVOR_BUILT_POST=0
for ADDR in "${SHARD_ADDRS[@]:1}"; do
	B="$(curl -sf "http://$ADDR/stats" | tr -d '\n' | sed -n 's/.*"tables_built": *\([0-9]*\).*/\1/p')"
	SURVIVOR_BUILT_POST=$((SURVIVOR_BUILT_POST + B))
done
if [ "$SURVIVOR_BUILT_POST" -ne "$SURVIVOR_BUILT_PRE" ]; then
	echo "loadtest.sh: survivors built $((SURVIVOR_BUILT_POST - SURVIVOR_BUILT_PRE)) new tables across the kill; failover must serve from replicas" >&2
	exit 1
fi
echo "failover: survivors built 0 new tables"

SUMMARY="$(cat <<EOF
{
  "benchmark": "cluster-loadtest",
  "shards": 3,
  "traces": $TRACES,
  "singles_requests": $REQUESTS,
  "singles_p50_us": $(field "$SINGLES" p50_us),
  "singles_p99_us": $(field "$SINGLES" p99_us),
  "singles_requests_per_s": $(field "$SINGLES" requests_per_s),
  "batch_requests": $BATCHES,
  "batch_size": $BATCH_SIZE,
  "batch_p50_us": $(field "$BATCHED" p50_us),
  "batch_p99_us": $(field "$BATCHED" p99_us),
  "batch_specs_per_s": $(field "$BATCHED" specs_per_s),
  "failover_requests": $REQUESTS,
  "failover_p50_us": $(field "$FAILOVER" p50_us),
  "failover_p99_us": $(field "$FAILOVER" p99_us),
  "failover_requests_per_s": $(field "$FAILOVER" requests_per_s),
  "fleet_tables_built": $BUILT_TOTAL,
  "per_shard_tables_built": [$BUILT_LIST]
}
EOF
)"

if [ "$CHECK" = 1 ]; then
	if [ ! -f BENCH_CLUSTER.json ]; then
		echo "loadtest.sh --check: no BENCH_CLUSTER.json snapshot to compare against" >&2
		exit 1
	fi
	for key in singles_p99_us batch_p99_us failover_p99_us; do
		FRESH="$(field "$SUMMARY" "$key")"
		BASE="$(sed -n "s/.*\"$key\": \([0-9.]*\).*/\1/p" BENCH_CLUSTER.json | head -1)"
		if [ -z "$FRESH" ] || [ -z "$BASE" ]; then
			echo "loadtest.sh --check: could not parse $key (fresh='$FRESH' base='$BASE')" >&2
			exit 1
		fi
		echo "loadtest.sh --check: $key fresh ${FRESH}us vs snapshot ${BASE}us (allowed ${FACTOR}x)"
		awk -v fresh="$FRESH" -v base="$BASE" -v factor="$FACTOR" -v key="$key" 'BEGIN {
			if (fresh > base * factor) {
				printf "loadtest.sh --check: REGRESSION in %s: %.0fus > %.2f x %.0fus\n", key, fresh, factor, base > "/dev/stderr"
				exit 1
			}
			printf "loadtest.sh --check: ok (%.2fx of snapshot)\n", fresh / base
		}'
	done
else
	echo "$SUMMARY" > BENCH_CLUSTER.json
	echo
	echo "loadtest.sh: wrote BENCH_CLUSTER.json"
	cat BENCH_CLUSTER.json
fi
