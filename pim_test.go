package pim_test

import (
	"bytes"
	"testing"

	pim "repro"
)

// The facade's quick-start path: generate, schedule, evaluate.
func TestFacadeQuickstart(t *testing.T) {
	g := pim.SquareGrid(4)
	tr := pim.LU{}.Generate(8, g)
	p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))

	base, err := (pim.Fixed{Label: "S.F.", Assign: pim.RowWise(pim.SquareMatrix(8), g)}).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	best, err := pim.GOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.TotalCost(best) >= p.Model.TotalCost(base) {
		t.Fatalf("GOMCDS %d did not beat row-wise %d",
			p.Model.TotalCost(best), p.Model.TotalCost(base))
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	g := pim.NewGrid(3, 2)
	tr := pim.NewTrace(g, 4)
	w := tr.AddWindow()
	w.Add(0, 1)
	w.AddVolume(5, 3, 2)

	var buf bytes.Buffer
	if err := pim.EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := pim.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRefs() != 2 || got.NumData != 4 {
		t.Fatalf("round trip lost data: %d refs, %d items", got.NumRefs(), got.NumData)
	}
}

func TestFacadeGroupingFlow(t *testing.T) {
	g := pim.SquareGrid(4)
	tr := pim.Code{Seed: 5}.Generate(8, g)
	p := pim.NewProblem(tr, 0)
	grp := pim.GreedyGrouping(p, pim.LocalCenters)
	grouped, err := pim.GroupSchedule(p, grp, pim.LocalCenters)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := pim.LOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.TotalCost(grouped) > p.Model.TotalCost(plain) {
		t.Fatalf("grouping raised cost: %d > %d",
			p.Model.TotalCost(grouped), p.Model.TotalCost(plain))
	}
}

func TestFacadeSimulation(t *testing.T) {
	g := pim.SquareGrid(4)
	tr := pim.MatSquare{}.Generate(8, g)
	p := pim.NewProblem(tr, 0)
	s, err := pim.SCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.Simulate(tr, s, pim.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlitHops != p.Model.TotalCost(s) {
		t.Fatalf("flit-hops %d != analytic %d", res.FlitHops, p.Model.TotalCost(s))
	}
}

func TestFacadeLookups(t *testing.T) {
	if _, err := pim.SchedulerByName("gomcds"); err != nil {
		t.Error(err)
	}
	if _, err := pim.GeneratorByName("lu"); err != nil {
		t.Error(err)
	}
	if len(pim.PaperBenchmarks()) != 5 {
		t.Error("benchmark registry wrong")
	}
	if pim.MinCapacity(64, 16) != 4 || pim.PaperCapacity(64, 16) != 8 {
		t.Error("capacity helpers wrong")
	}
}

func TestFacadeExperiments(t *testing.T) {
	cfg := pim.DefaultExperimentConfig()
	cfg.Sizes = []int{8}
	rows, err := pim.Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	rows2, err := pim.Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 5 {
		t.Fatalf("table 2 rows = %d", len(rows2))
	}
}

func TestFacadeExtensions(t *testing.T) {
	g := pim.SquareGrid(4)
	tr := pim.MatSquare{}.Generate(8, g)
	p := pim.NewProblem(tr, pim.PaperCapacity(tr.NumData, g.NumProcs()))

	// Online policies.
	on, err := (pim.OnlineScheduler{Policy: pim.Hysteresis}).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	off, err := pim.GOMCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.TotalCost(on) < p.Model.TotalCost(off) {
		t.Error("online beat the offline optimum")
	}

	// Exact assignment.
	if _, err := (pim.ExactSCDS{}).Schedule(p); err != nil {
		t.Fatal(err)
	}

	// Replication.
	rs, err := (pim.ReplicaGreedy{MaxCopies: 2}).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if pim.EvaluateReplicas(p, rs).Total() <= 0 {
		t.Error("replicated schedule has no cost on a remote-heavy trace")
	}
	lifted := pim.ReplicasFromSingle(off.Centers)
	if pim.EvaluateReplicas(p, lifted).Total() != p.Model.TotalCost(off) {
		t.Error("single-copy lift does not match model cost")
	}

	// Stats + rendering.
	st := pim.ComputeStats(p, off)
	if st.TotalVolume == 0 {
		t.Error("stats saw no volume")
	}
	ts := pim.ComputeTraceStats(tr)
	if ts.SharingDegree <= 1 {
		t.Error("matrix square should share operands")
	}
	if pim.Heatmap(g, make([]int64, 16), "x") == "" {
		t.Error("heatmap empty")
	}

	// Capture.
	rec := pim.NewRecorder(g, 4)
	rec.Touch(0, 1)
	rec.Barrier()
	if rec.Finish().NumRefs() != 1 {
		t.Error("recorder lost events")
	}

	// Routing-aware simulation.
	res, err := pim.Simulate(tr, off, pim.SimOptions{Routing: pim.RouteBalanced})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlitHops != p.Model.TotalCost(off) {
		t.Error("balanced routing changed flit-hops")
	}
}

func TestFacadePlanSegmentCoarse(t *testing.T) {
	g := pim.SquareGrid(4)
	tr := pim.LU{}.Generate(8, g)
	p := pim.NewProblem(tr, 0)
	s, err := pim.SCDS{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}

	// Plans.
	pl, err := pim.BuildPlan(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if pl.FlitHops() != p.Model.TotalCost(s) {
		t.Error("plan flit-hops mismatch")
	}
	var buf bytes.Buffer
	if err := pim.EncodePlan(&buf, pl); err != nil {
		t.Fatal(err)
	}
	if _, err := pim.DecodePlan(&buf); err != nil {
		t.Fatal(err)
	}

	// Segmentation round trip.
	refs := pim.FlattenTrace(tr)
	if got := pim.SegmentFixed(g, tr.NumData, refs, 100).NumRefs(); got != len(refs) {
		t.Errorf("SegmentFixed lost refs: %d vs %d", got, len(refs))
	}
	if pim.SegmentPhases(g, tr.NumData, refs, pim.SegmentOptions{}).NumRefs() != len(refs) {
		t.Error("SegmentPhases lost refs")
	}

	// Coarsening round trip.
	tm := pim.TileMatrix(pim.SquareMatrix(8), 2)
	ct, err := pim.CoarsenTrace(tr, tm)
	if err != nil {
		t.Fatal(err)
	}
	cp := pim.NewProblem(ct, 0)
	cs, err := pim.GOMCDS{}.Schedule(cp)
	if err != nil {
		t.Fatal(err)
	}
	fine := pim.ExpandSchedule(cs, tm)
	if err := fine.Validate(g, tr.NumData, tr.NumWindows()); err != nil {
		t.Fatal(err)
	}
}
