package pim_test

import (
	"bytes"
	"testing"

	pim "repro"
)

// TestFullPipeline drives the whole system end to end, the way a
// downstream user would compose it:
//
//	instrumented program (Recorder) -> flat stream -> phase detection
//	-> scheduling -> window grouping -> plan lowering -> codec round
//	trip -> interconnect simulation -> statistics
//
// and checks the cross-component invariants at every joint.
func TestFullPipeline(t *testing.T) {
	g := pim.SquareGrid(4)
	const items = 64

	// 1. Capture a two-phase application: a stencil-like sweep over the
	// lower half of the items, then a reduction into one corner over
	// the upper half.
	rec := pim.NewRecorder(g, items)
	for step := 0; step < 6; step++ {
		for d := 0; d < items/2; d++ {
			proc := (d + step) % g.NumProcs()
			rec.TouchVolume(proc, pim.DataID(d), 2)
		}
		rec.Barrier()
	}
	for step := 0; step < 6; step++ {
		for d := items / 2; d < items; d++ {
			rec.Touch(15, pim.DataID(d))
		}
		rec.Barrier()
	}
	captured := rec.Finish()
	if captured.NumWindows() != 12 {
		t.Fatalf("captured %d windows", captured.NumWindows())
	}

	// 2. Flatten and re-segment: phase detection must recover a split
	// at the application's phase boundary (not necessarily the exact
	// barrier structure, but more than one window and no lost events).
	refs := pim.FlattenTrace(captured)
	segmented := pim.SegmentPhases(g, items, refs, pim.SegmentOptions{ChunkSize: len(refs) / 12})
	if segmented.NumRefs() != len(refs) {
		t.Fatalf("segmentation lost events: %d vs %d", segmented.NumRefs(), len(refs))
	}
	if segmented.NumWindows() < 2 {
		t.Fatalf("phase detection found %d windows", segmented.NumWindows())
	}

	// 3. Trace codec round trip.
	var tbuf bytes.Buffer
	if err := pim.EncodeTrace(&tbuf, segmented); err != nil {
		t.Fatal(err)
	}
	loaded, err := pim.DecodeTrace(&tbuf)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Schedule with every core algorithm under the paper capacity.
	capacity := pim.PaperCapacity(items, g.NumProcs())
	p := pim.NewProblem(loaded, capacity)
	costs := map[string]int64{}
	schedules := map[string]pim.Schedule{}
	for _, s := range []pim.Scheduler{pim.SCDS{}, pim.LOMCDS{}, pim.GOMCDS{}} {
		sc, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		costs[s.Name()] = p.Model.TotalCost(sc)
		schedules[s.Name()] = sc
	}
	if costs["GOMCDS"] > costs["LOMCDS"] || costs["GOMCDS"] > costs["SCDS"] {
		t.Fatalf("scheduler ordering violated: %v", costs)
	}

	// 5. Grouping on top of LOMCDS must not regress.
	grp := pim.GreedyGrouping(p, pim.LocalCenters)
	grouped, err := pim.GroupSchedule(p, grp, pim.LocalCenters)
	if err != nil {
		t.Fatal(err)
	}
	if g, l := p.Model.TotalCost(grouped), costs["LOMCDS"]; g > l {
		t.Fatalf("grouping regressed: %d > %d", g, l)
	}

	// 6. Lower the best schedule to a plan, round-trip it through the
	// codec, and verify the plan realizes the analytic cost.
	best := schedules["GOMCDS"]
	pl, err := pim.BuildPlan(loaded, best)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf bytes.Buffer
	if err := pim.EncodePlan(&pbuf, pl); err != nil {
		t.Fatal(err)
	}
	pl2, err := pim.DecodePlan(&pbuf)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.FlitHops() != costs["GOMCDS"] {
		t.Fatalf("plan flit-hops %d != analytic %d", pl2.FlitHops(), costs["GOMCDS"])
	}

	// 7. Simulate baseline and best; the better schedule must win in
	// both flit-hops (exactly the analytic costs) and makespan.
	baseline, err := (pim.Fixed{
		Label:  "cyclic",
		Assign: pim.Cyclic(items, g),
	}).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := pim.Simulate(loaded, baseline, pim.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rBest, err := pim.Simulate(loaded, best, pim.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rBest.FlitHops != costs["GOMCDS"] {
		t.Fatalf("simulated flit-hops %d != analytic %d", rBest.FlitHops, costs["GOMCDS"])
	}
	if rBest.FlitHops >= rBase.FlitHops || rBest.Cycles > rBase.Cycles {
		t.Fatalf("GOMCDS (%d hops, %d cycles) did not beat cyclic (%d hops, %d cycles)",
			rBest.FlitHops, rBest.Cycles, rBase.FlitHops, rBase.Cycles)
	}

	// 8. Statistics: the reduction phase makes item sharing visible and
	// GOMCDS keeps a healthy local-service fraction.
	st := pim.ComputeStats(p, best)
	if st.TotalVolume == 0 || st.Locality() <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.MaxOccupancy > capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", st.MaxOccupancy, capacity)
	}
}
