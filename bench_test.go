// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, regenerating the full artifact per
// iteration and reporting the headline metrics (average percentage
// improvement over the straightforward distribution) alongside the
// timing. Run with:
//
//	go test -bench=. -benchmem
//
// The same artifacts are printed as tables by cmd/pimbench.
package pim_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/costgraph"
	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkFigure1Example regenerates the Section 3.3 / Figure 1 worked
// example: the single data item scheduled by all three algorithms.
func BenchmarkFigure1Example(b *testing.B) {
	var last experiments.ExampleResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Example331()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Costs["SCDS"]), "cost-SCDS")
	b.ReportMetric(float64(last.Costs["LOMCDS"]), "cost-LOMCDS")
	b.ReportMetric(float64(last.Costs["GOMCDS"]), "cost-GOMCDS")
}

// BenchmarkTable1 regenerates the paper's Table 1: total communication
// cost of S.F., SCDS, LOMCDS and GOMCDS on all five benchmarks at
// 8x8, 16x16 and 32x32 on a 4x4 array.
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, rows)
}

// BenchmarkTable2 regenerates the paper's Table 2: the same costs after
// execution-window grouping (Algorithm 3 with LOMCDS centers).
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAverages(b, rows)
}

// BenchmarkTable1PerScheduler isolates the per-scheduler cost of the
// Table 1 sweep at the largest size, for profiling the algorithms.
func BenchmarkTable1PerScheduler(b *testing.B) {
	for _, scheme := range []string{"SCDS", "LOMCDS", "GOMCDS"} {
		b.Run(scheme, func(b *testing.B) {
			cfg := experiments.DefaultConfig()
			cfg.Sizes = []int{32}
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table1(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := rows[0].Scheme(scheme); !ok {
					b.Fatal("scheme missing")
				}
			}
		})
	}
}

// BenchmarkSimulatedExecution regenerates the E5 execution-time study:
// every benchmark at 16x16, all four schemes, on the contended mesh.
func BenchmarkSimulatedExecution(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.SimRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SimStudy(cfg, 16, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: cycle ratio of GOMCDS to the straightforward baseline.
	var sf, gom float64
	for _, r := range rows {
		switch r.Scheme {
		case "S.F.":
			sf += float64(r.Cycles)
		case "GOMCDS":
			gom += float64(r.Cycles)
		}
	}
	if sf > 0 {
		b.ReportMetric(100*gom/sf, "%cycles-vs-SF")
	}
}

// BenchmarkGroupingAblation regenerates the E6 ablation: greedy
// Algorithm 3 (strict and accept-equal) against the exact DP grouper.
func BenchmarkGroupingAblation(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Sizes = []int{16}
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.GroupingAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ungrouped, greedy, optimal float64
	for _, r := range rows {
		ungrouped += float64(r.Ungrouped)
		greedy += float64(r.Greedy)
		optimal += float64(r.Optimal)
	}
	if ungrouped > 0 {
		b.ReportMetric(100*greedy/ungrouped, "%greedy-vs-ungrouped")
		b.ReportMetric(100*optimal/ungrouped, "%optimal-vs-ungrouped")
	}
}

// BenchmarkWindowSweep regenerates the window-granularity sweep: how
// coarsening execution windows changes LOMCDS and GOMCDS costs.
func BenchmarkWindowSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WindowSweep(cfg, 16, []int{1, 2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func reportAverages(b *testing.B, rows []experiments.Row) {
	b.Helper()
	b.ReportMetric(experiments.AverageImprovement(rows, "SCDS"), "%improve-SCDS")
	b.ReportMetric(experiments.AverageImprovement(rows, "LOMCDS"), "%improve-LOMCDS")
	b.ReportMetric(experiments.AverageImprovement(rows, "GOMCDS"), "%improve-GOMCDS")
}

// BenchmarkResidenceKernel is the headline kernel comparison: the
// separable prefix-sum residence kernel against the naive per-cell
// summation on a 16x16 array with dense reference windows (every
// window averages 64 references per processor). scripts/bench.sh runs
// it and records the speedup in BENCH_RESIDENCE.json; compare runs
// with benchstat.
func BenchmarkResidenceKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := grid.Square(16)
	const nd = 256
	tr := trace.New(g, nd)
	for w := 0; w < 8; w++ {
		win := tr.AddWindow()
		for r := 0; r < 64*256; r++ {
			win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
		}
	}
	m := cost.NewModel(tr)
	b.Run("separable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.BuildResidenceTable()
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.BuildResidenceTableNaive()
		}
	})
}

// layeredInstance builds a dense random layered DP instance: 8 layers
// (execution windows) of residence-like costs on an n x n array.
func layeredInstance(n int) [][]int64 {
	rng := rand.New(rand.NewSource(77))
	np := n * n
	nodeCost := make([][]int64, 8)
	for l := range nodeCost {
		row := make([]int64, np)
		for p := range row {
			row[p] = int64(rng.Intn(1000))
		}
		nodeCost[l] = row
	}
	return nodeCost
}

// BenchmarkShortestLayeredPath is the headline DP-kernel comparison:
// the separable min-plus sweep against the dense O(P²) relaxation on
// 8x8, 16x16 and 32x32 arrays (8 layers each). scripts/bench.sh runs
// the 16x16 pair and records the speedup in BENCH_SCHED.json; compare
// runs with benchstat.
func BenchmarkShortestLayeredPath(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		nodeCost := layeredInstance(n)
		b.Run(fmt.Sprintf("sweep/%dx%d", n, n), func(b *testing.B) {
			solver := costgraph.NewSolver(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solver.Solve(nodeCost, 3)
			}
		})
		b.Run(fmt.Sprintf("naive/%dx%d", n, n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				costgraph.ShortestLayeredPathNaive(nodeCost, n, n, 3)
			}
		})
	}
}

// BenchmarkGOMCDS times the full scheduler with each DP kernel on a
// capacity-tracked 16x16-array instance (the branch where the DP
// dominates end to end); scripts/bench.sh snapshots both into
// BENCH_SCHED.json.
func BenchmarkGOMCDS(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	g := grid.Square(16)
	const nd = 128
	tr := trace.New(g, nd)
	for w := 0; w < 8; w++ {
		win := tr.AddWindow()
		for r := 0; r < 8*256; r++ {
			win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
		}
	}
	p := sched.NewProblem(tr, 2)
	for _, kernel := range []costgraph.Kernel{costgraph.KernelSweep, costgraph.KernelNaive} {
		b.Run(kernel.String(), func(b *testing.B) {
			s := sched.GOMCDS{Kernel: kernel}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaApply is the headline incremental-rescheduling
// comparison: one edit_item delta on a middle window of a 64-window,
// 64-item trace on a 16x16 array, then a fresh schedule. The
// incremental path patches one residence-table row and resumes the
// edited item's DP from the dirty layer; the full path rebuilds the
// model, table and every item's DP from scratch — exactly what a
// sessionless service does per request. The edit alternates between
// two volume patterns so every iteration really changes state.
// scripts/bench.sh snapshots both into BENCH_DELTA.json.
func BenchmarkDeltaApply(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	g := grid.Square(16)
	const nd = 64
	const nw = 64
	tr := trace.New(g, nd)
	for w := 0; w < nw; w++ {
		win := tr.AddWindow()
		for r := 0; r < 4*256; r++ {
			win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
		}
	}
	np := g.NumProcs()
	edits := [2][]int{make([]int, np), make([]int, np)}
	for p := 0; p < np; p++ {
		edits[0][p] = rng.Intn(3)
		edits[1][p] = rng.Intn(3)
	}
	const editWindow = nw / 2
	const editItem = trace.DataID(7)

	b.Run("incremental", func(b *testing.B) {
		s, err := delta.NewSession(tr, sched.GOMCDS{}, 0, delta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Schedule(); err != nil { // warm: cold run priced outside the loop
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := delta.EditItemVolumes(editWindow, editItem, edits[i%2])
			if _, err := s.Apply(d); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Schedule(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		cur := tr.Clone()
		scheduler := sched.GOMCDS{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := delta.EditItemVolumes(editWindow, editItem, edits[i%2])
			if err := delta.Materialize(cur, d); err != nil {
				b.Fatal(err)
			}
			p := sched.NewProblem(cur, 0)
			schedule, err := scheduler.Schedule(p)
			if err != nil {
				b.Fatal(err)
			}
			_ = p.Model.Evaluate(schedule)
		}
	})
}

// BenchmarkResidenceRow pins the steady-state single-row pricing
// kernel — the unit of work an incremental session does per dirtied
// (window, item) pair. It runs allocation-free through a caller-held
// RowScratch; scripts/bench.sh fails the snapshot if allocs/op is ever
// non-zero.
func BenchmarkResidenceRow(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	g := grid.Square(16)
	const nd = 64
	tr := trace.New(g, nd)
	for w := 0; w < 8; w++ {
		win := tr.AddWindow()
		for r := 0; r < 4*256; r++ {
			win.Add(rng.Intn(g.NumProcs()), trace.DataID(rng.Intn(nd)))
		}
	}
	m := cost.NewModel(tr)
	sc := m.NewRowScratch()
	out := make([]int64, g.NumProcs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ResidenceRowInto(sc, i%8, trace.DataID(i%nd), out)
	}
}

// BenchmarkSolveBatch compares the batched layer-major DP (one pass
// over the flat cost cube sweeps every item of a window range) against
// the per-item Solve loop it replaced in GOMCDS, with rows aliased
// into the cube exactly as the old scheduler did. Both recurrences are
// bit-identical (TestSolveBatchMatchesSolve) and the relax sweeps
// dominate, so the times track each other; the batch form's win is
// that it returns zero per-item garbage once the solver's scratch has
// grown — scripts/bench.sh fails the snapshot if batch allocs/op is
// ever non-zero.
func BenchmarkSolveBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	const layers, items, n = 8, 64, 16
	np := n * n
	cells := make([]int64, layers*items*np)
	for i := range cells {
		cells[i] = int64(rng.Intn(1000))
	}
	sizes := make([]int64, items)
	for i := range sizes {
		sizes[i] = int64(1 + rng.Intn(4))
	}
	b.Run("batch", func(b *testing.B) {
		s := costgraph.NewSolver(n, n)
		s.SolveBatch(cells, layers, items, 0, items, sizes) // grow scratch once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SolveBatch(cells, layers, items, 0, items, sizes)
		}
	})
	b.Run("per-item", func(b *testing.B) {
		s := costgraph.NewSolver(n, n)
		nodeCost := make([][]int64, layers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for it := 0; it < items; it++ {
				for l := 0; l < layers; l++ {
					base := (l*items + it) * np
					nodeCost[l] = cells[base : base+np]
				}
				s.Solve(nodeCost, sizes[it])
			}
		}
	})
}

// BenchmarkServeSchedule is the in-process service load harness: the
// cache-hot /schedule path (decode trace text, hit the table cache,
// pooled batched DP, assemble response) measured end to end. The hot
// sub-benchmark drives a closed loop and reports p50/p99 latency as
// custom metrics; the parallel one drives GOMAXPROCS closed loops to
// expose cross-request contention (the solver pool and buffer pool
// must not serialize it). scripts/bench.sh snapshots both into
// BENCH_SERVE.json and --check guards the drift.
func BenchmarkServeSchedule(b *testing.B) {
	text := serveTrace(b, "lu", 16, grid.Square(4))
	req := service.Request{Trace: text, Algorithm: "gomcds"}
	ctx := context.Background()
	b.Run("hot", func(b *testing.B) {
		svc := service.New(service.Config{})
		defer svc.Close()
		if _, err := svc.Schedule(ctx, req); err != nil {
			b.Fatal(err) // warm: builds and caches the table
		}
		lat := make([]time.Duration, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := svc.Schedule(ctx, req); err != nil {
				b.Fatal(err)
			}
			lat[i] = time.Since(t0)
		}
		b.StopTimer()
		slices.Sort(lat)
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds())/1e3, "p50-us")
		b.ReportMetric(float64(lat[min(len(lat)-1, len(lat)*99/100)].Nanoseconds())/1e3, "p99-us")
	})
	b.Run("parallel", func(b *testing.B) {
		svc := service.New(service.Config{})
		defer svc.Close()
		if _, err := svc.Schedule(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := svc.Schedule(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// serveTrace renders a generated workload in the pimtrace v1 codec,
// the form service requests carry.
func serveTrace(b *testing.B, gen string, n int, g grid.Grid) string {
	b.Helper()
	generator, err := workload.ByName(gen)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, generator.Generate(n, g)); err != nil {
		b.Fatal(err)
	}
	return buf.String()
}

// BenchmarkOnlineStudy regenerates the E7 online-vs-offline study at
// 16x16 and reports the hysteresis policy's competitive ratio.
func BenchmarkOnlineStudy(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.OnlineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.OnlineStudy(cfg, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	var n int
	for _, r := range rows {
		if r.Scheme == "online-hysteresis" {
			sum += r.RatioVsOffline
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "x-offline-hysteresis")
	}
}

// BenchmarkReplicationStudy regenerates the E8 replication sweep at
// 16x16 and reports the 4-copy cost relative to single-copy GOMCDS.
func BenchmarkReplicationStudy(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.ReplicaRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ReplicationStudy(cfg, 16, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	var n int
	for _, r := range rows {
		if r.MaxCopies == 4 {
			sum += r.VsSingle
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "x-gomcds-4copies")
	}
}

// BenchmarkExactAssignment regenerates the E9 greedy-vs-exact study at
// 16x16 under minimum memory and reports the greedy overhead.
func BenchmarkExactAssignment(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.ExactRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExactAssignmentStudy(cfg, 16, []int{1})
		if err != nil {
			b.Fatal(err)
		}
	}
	var greedy, exact float64
	for _, r := range rows {
		greedy += float64(r.GreedySCDS)
		exact += float64(r.ExactSCDS)
	}
	if exact > 0 {
		b.ReportMetric(greedy/exact, "greedy-vs-exact-SCDS")
	}
}
